"""The interception-product catalog.

One :class:`ProductSpec` per product or product group the paper
observes.  ``study1_weight`` / ``study2_weight`` are relative sampling
weights calibrated to Table 4 (study 1 issuer counts), §6.4 (study 2
malware and oddities) and Tables 5/6 (category totals); a weight of 0
means the product was not seen in that study.

Category assignments follow the paper where it names a product's
nature (§5.1, §5.2, §6.4) and otherwise the authors' apparent binning
(e.g. consumer AV firewalls under Business/Personal Firewall).  The
paper's Tables 4 and 5 cannot be exactly cross-tabulated from the
published data; EXPERIMENTS.md records the residual deviations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.proxy.profile import (
    AlpnPolicy,
    ForgedUpstreamPolicy,
    ProxyCategory,
    ProxyProfile,
    ServerSessionPolicy,
    SubjectRewrite,
    UpstreamHelloPolicy,
)
from repro.tls.codec import (
    EXT_EC_POINT_FORMATS,
    EXT_RENEGOTIATION_INFO,
    EXT_SERVER_NAME,
    EXT_SIGNATURE_ALGORITHMS,
    EXT_SUPPORTED_GROUPS,
    TLS_1_3,
)
from repro.tls.fingerprint import CANONICAL_SERVER_EXTENSION_TYPES
from repro.x509.model import Name

# Number of leaf-key pool slots per product ("installs").  Key-reusing
# malware ignores this and uses one global key.  Kept well above the
# largest issuer-variant rotation (8) so that no ordinary product ever
# presents a single key per issuer name — which is the IopFail signal
# the shared-key analysis hunts for.
NUM_CLIENT_BUCKETS = 32


@dataclass(frozen=True)
class ProductSpec:
    """A product plus its prevalence and geography."""

    profile: ProxyProfile
    study1_weight: float
    study2_weight: float
    # Country bias: multiplier applied to this product's weight when
    # sampling in the given country ("*" = all countries not listed).
    country_bias: dict[str, float] = field(default_factory=dict)
    # Shared egress IPs per country: {"IE": 1} means every client of
    # this product in Ireland reports from the same single IP.  Models
    # the paper's "DSP" (204 connections, 1 IP), "Information
    # Technology" (33 connections, 3 IPs) and "MYInternetS" (36
    # connections, 6 IPs).  None means every client has its own IP.
    egress_plan: dict[str, int] | None = None

    @property
    def egress_ips(self) -> int | None:
        """Total distinct egress IPs, if the product pools them."""
        if self.egress_plan is None:
            return None
        return sum(self.egress_plan.values())

    @property
    def key(self) -> str:
        return self.profile.key

    @property
    def category(self) -> ProxyCategory:
        return self.profile.category

    def weight_in(self, study: int, country: str) -> float:
        base = self.study1_weight if study == 1 else self.study2_weight
        if not base:
            return 0.0
        if country in self.country_bias:
            return base * self.country_bias[country]
        return base * self.country_bias.get("*", 1.0)


def _name(org: str | None = None, cn: str | None = None, ou: str | None = None) -> Name:
    return Name.build(common_name=cn, organization=org, organizational_unit=ou)


def _firewall(
    key: str,
    org: str,
    w1: float,
    w2: float,
    category: ProxyCategory = ProxyCategory.BUSINESS_PERSONAL_FIREWALL,
    leaf_bits: int = 2048,
    hash_name: str = "sha1",
    forged: ForgedUpstreamPolicy = ForgedUpstreamPolicy.BLOCK,
    bias: dict[str, float] | None = None,
    cn: str | None = None,
    posture: dict[str, object] | None = None,
) -> ProductSpec:
    return ProductSpec(
        profile=ProxyProfile(
            key=key,
            issuer=_name(org=org, cn=cn or f"{org} Personal CA"),
            category=category,
            leaf_key_bits=leaf_bits,
            hash_name=hash_name,
            forged_upstream=forged,
            **(posture or {}),
        ),
        study1_weight=w1,
        study2_weight=w2,
        country_bias=bias or {},
    )


def _malware(
    key: str,
    org: str | None,
    w1: float,
    w2: float,
    leaf_bits: int = 1024,
    hash_name: str = "sha1",
    reuses_key: bool = False,
    cn: str | None = None,
    bias: dict[str, float] | None = None,
) -> ProductSpec:
    return ProductSpec(
        profile=ProxyProfile(
            key=key,
            issuer=_name(org=org, cn=cn),
            category=ProxyCategory.MALWARE,
            leaf_key_bits=leaf_bits,
            hash_name=hash_name,
            reuses_leaf_key=reuses_key,
            # Malware does not care whether upstream is genuine.
            forged_upstream=ForgedUpstreamPolicy.MASK,
            # ... and does not so much as look: no validation at all.
            validates_hostname=False,
            validates_expiry=False,
            validates_chain_of_trust=False,
        ),
        study1_weight=w1,
        study2_weight=w2,
        country_bias=bias or {},
    )


def build_catalog() -> list[ProductSpec]:
    """The full product catalog, in Table 4 rank order then additions."""
    specs: list[ProductSpec] = []

    # High-profile sites the big consumer AV products leave alone (§6.3:
    # Huang's 0.20% Facebook-only rate vs this paper's 0.41% suggests
    # whitelisting of extremely popular, reputable sites).  None of the
    # paper's probe targets appears here, which is why both studies
    # measured identical rates across host types.
    popular_whitelist = frozenset({"facebook.com", "facebook.example"})

    # ---- Table 4 top-20 issuer organizations (study-1 counts as weights).
    specs.append(
        ProductSpec(
            profile=ProxyProfile(
                key="bitdefender",
                issuer=_name(org="Bitdefender", cn="Bitdefender Personal CA"),
                category=ProxyCategory.BUSINESS_PERSONAL_FIREWALL,
                leaf_key_bits=1024,
                hash_name="sha1",
                forged_upstream=ForgedUpstreamPolicy.BLOCK,
                whitelist=popular_whitelist,
                # §5.2's good citizen: the strictest upstream posture in
                # the catalog (it blocked the authors' forged cert).
                min_upstream_key_bits=1024,
                rejects_deprecated_hashes=True,
                min_tls_version=(3, 1),
                checks_revocation=True,
                # ... and the only consumer AV that replays the
                # browser's ClientHello upstream instead of speaking
                # with its own stack (fingerprint-indistinguishable).
                upstream_hello=UpstreamHelloPolicy.MIMIC,
                # The server leg mimics a genuine origin's answer too:
                # negotiate the client's first RSA suite (whatever the
                # probing browser), the canonical extension echo, and
                # fresh resumable session ids.
                substitute_cipher_suite=None,
                own_server_extension_types=CANONICAL_SERVER_EXTENSION_TYPES,
                server_session_id=ServerSessionPolicy.FRESH,
                # The full modern mimic: negotiates TLS 1.3 like a
                # genuine origin, selects ALPN the way the origin
                # would, grants tickets and honours its own session
                # ids — the catalog's clean pass on the modern checks.
                max_tls_version=TLS_1_3,
                alpn=AlpnPolicy.ECHO,
                issues_session_tickets=True,
                resumes_sessions=True,
            ),
            study1_weight=4788,
            study2_weight=20000,
        )
    )
    specs.append(
        _firewall(
            "psafe",
            "PSafe Tecnologia S.A.",
            1200,
            5000,
            leaf_bits=2048,
            bias={"BR": 40.0, "PT": 6.0, "*": 0.15},
            posture={"min_tls_version": (3, 1)},
        )
    )
    specs.append(_malware("sendori", "Sendori Inc", 966, 600, leaf_bits=2048))
    specs.append(
        ProductSpec(
            profile=ProxyProfile(
                key="eset",
                issuer=_name(org="ESET spol. s r. o.", cn="ESET SSL Filter CA"),
                category=ProxyCategory.BUSINESS_PERSONAL_FIREWALL,
                leaf_key_bits=2048,
                hash_name="sha1",
                forged_upstream=ForgedUpstreamPolicy.BLOCK,
                whitelist=popular_whitelist,
                min_upstream_key_bits=1024,
                rejects_deprecated_hashes=True,
                min_tls_version=(3, 1),
                upstream_hello=UpstreamHelloPolicy.MIMIC,
                # Mimics on the server leg as well (see bitdefender),
                # modern posture included.
                substitute_cipher_suite=None,
                own_server_extension_types=CANONICAL_SERVER_EXTENSION_TYPES,
                server_session_id=ServerSessionPolicy.FRESH,
                max_tls_version=TLS_1_3,
                alpn=AlpnPolicy.ECHO,
                issues_session_tickets=True,
                resumes_sessions=True,
            ),
            study1_weight=927,
            study2_weight=4500,
        )
    )
    # "Null" — 829 substitute certs with a null Issuer Organization.
    specs.append(
        ProductSpec(
            profile=ProxyProfile(
                key="null-issuer",
                issuer=Name(),  # entirely empty issuer DN
                category=ProxyCategory.UNKNOWN,
                leaf_key_bits=1024,
                hash_name="sha1",
                forged_upstream=ForgedUpstreamPolicy.MASK,
            ),
            study1_weight=829,
            study2_weight=1000,
            country_bias={"CN": 2.0, "UA": 2.0, "RU": 2.0, "EG": 2.0, "PK": 2.0},
        )
    )
    specs.append(
        _firewall(
            "kaspersky",
            "Kaspersky Lab ZAO",
            589,
            3000,
            posture={"min_upstream_key_bits": 1024, "min_tls_version": (3, 1)},
        )
    )
    specs.append(
        _firewall(
            "fortinet",
            "Fortinet",
            310,
            800,
            leaf_bits=2048,
            cn="FortiGate CA",
            posture={
                "min_upstream_key_bits": 1024,
                "min_tls_version": (3, 1),
                "checks_revocation": True,
                # An appliance stack rich enough to carry ECC
                # extensions upstream — still its *own* fingerprint,
                # not the browser's.
                "own_extension_types": (
                    EXT_SERVER_NAME,
                    EXT_SUPPORTED_GROUPS,
                    EXT_EC_POINT_FORMATS,
                    EXT_SIGNATURE_ALGORITHMS,
                ),
                # The substitute leg is half-modern too: an ECDHE
                # suite the browser offered (not the one a genuine
                # origin answers) with a sparse extension echo and
                # resumable sessions.
                "substitute_cipher_suite": 0xC014,
                "own_server_extension_types": (
                    EXT_RENEGOTIATION_INFO,
                    EXT_EC_POINT_FORMATS,
                ),
                "server_session_id": ServerSessionPolicy.FRESH,
                # 1.3-capable on paper, but the inspection path pushes
                # modern clients back to 1.2 — at least it stamps the
                # RFC 8446 sentinel (the *visible* downgrade, worth
                # partial credit), strips ALPN, and never honours the
                # fresh session ids it mints.
                "max_tls_version": TLS_1_3,
                "downgrade_tls13": True,
                "sets_downgrade_sentinel": True,
                "alpn": AlpnPolicy.STRIP,
            },
        )
    )
    # Kurupira — the negligent parental filter of §5.2: masks forged
    # upstream certificates, enabling an invisible MitM.  §5.2 calls it
    # a parental filter, but Table 5's Parental Control total (156) is
    # smaller than Kurupira's own 267 connections, so the authors'
    # classification evidently binned it with consumer firewall
    # software; we follow the tables.
    specs.append(
        ProductSpec(
            profile=ProxyProfile(
                key="kurupira",
                issuer=_name(org="Kurupira.NET", cn="Kurupira WebFilter"),
                category=ProxyCategory.BUSINESS_PERSONAL_FIREWALL,
                leaf_key_bits=1024,
                hash_name="sha1",
                forged_upstream=ForgedUpstreamPolicy.MASK,
            ),
            study1_weight=267,
            study2_weight=150,
            country_bias={"BR": 12.0, "*": 0.4},
        )
    )
    # Organization gateways that relay upstream problems to the user's
    # browser rather than deciding themselves (every defect they notice
    # is passed through; the rest are masked like anyone else's).
    _relay_posture = {
        "min_upstream_key_bits": 1024,
        "rejects_deprecated_hashes": True,
        "min_tls_version": (3, 1),
        "checks_revocation": True,
    }
    specs.append(
        _firewall(
            "posco",
            "POSCO",
            167,
            600,
            category=ProxyCategory.ORGANIZATION,
            bias={"KR": 200.0, "*": 0.02},
            forged=ForgedUpstreamPolicy.PASS_THROUGH,
            posture=_relay_posture,
        )
    )
    specs.append(
        _firewall(
            "qustodio",
            "Qustodio",
            109,
            120,
            category=ProxyCategory.PARENTAL_CONTROL,
            # Parental filter that never looks at validity windows.
            posture={"validates_expiry": False},
        )
    )
    specs.append(_malware("webmakerplus", "WebMakerPlus Ltd", 95, 60, leaf_bits=2048))
    specs.append(
        _firewall(
            "southern-company",
            "Southern Company Services",
            62,
            200,
            category=ProxyCategory.ORGANIZATION,
            bias={"US": 30.0, "*": 0.05},
            forged=ForgedUpstreamPolicy.PASS_THROUGH,
            posture=_relay_posture,
        )
    )
    specs.append(
        _firewall(
            "nordnet",
            "NordNet",
            61,
            200,
            category=ProxyCategory.PERSONAL_FIREWALL,
            bias={"FR": 40.0, "*": 0.1},
            posture={"min_tls_version": (3, 1)},
        )
    )
    specs.append(
        _firewall(
            "target-corp",
            "Target Corporation",
            52,
            150,
            category=ProxyCategory.ORGANIZATION,
            bias={"US": 30.0, "*": 0.05},
        )
    )
    # The §5.2 finding: substitutes claiming "DigiCert Inc" as issuer,
    # though DigiCert never signed them (issuer copied from the
    # original certificate).
    specs.append(
        ProductSpec(
            profile=ProxyProfile(
                key="digicert-masquerade",
                issuer=_name(org="DigiCert Inc", cn="DigiCert High Assurance CA-3"),
                category=ProxyCategory.CERTIFICATE_AUTHORITY,
                leaf_key_bits=2048,
                hash_name="sha1",
                copies_upstream_issuer=True,
                forged_upstream=ForgedUpstreamPolicy.MASK,
            ),
            study1_weight=49,
            study2_weight=49,
        )
    )
    specs.append(
        _firewall(
            "contentwatch",
            "ContentWatch, Inc.",
            42,
            80,
            category=ProxyCategory.PARENTAL_CONTROL,
            # Validates on first contact, then trusts its per-host cache
            # — the time-of-check/time-of-use hole Waked et al. found in
            # real appliances; the audit battery's warm-up exposes it.
            posture={"caches_validation": True},
        )
    )
    specs.append(
        _firewall(
            "netspark",
            "NetSpark, Inc.",
            42,
            78,
            category=ProxyCategory.PARENTAL_CONTROL,
        )
    )
    # Spam-industry products (§5.1); classified with malware.
    specs.append(_malware("sweesh", "Sweesh LTD", 39, 25, leaf_bits=2048))
    specs.append(
        _firewall(
            "ibrd", "IBRD", 26, 80, category=ProxyCategory.ORGANIZATION
        )
    )
    specs.append(
        ProductSpec(
            profile=ProxyProfile(
                key="cloud-services",
                issuer=_name(org="Cloud Services", cn="Cloud Services CA"),
                category=ProxyCategory.UNKNOWN,
                leaf_key_bits=2048,
                hash_name="sha1",
                forged_upstream=ForgedUpstreamPolicy.MASK,
            ),
            study1_weight=23,
            study2_weight=40,
        )
    )
    specs.append(_malware("atompark", "AtomPark Software Inc", 20, 15, leaf_bits=2048))

    # IopFailZeroAccessCreate — every certificate carries the same
    # 512-bit public key, signed with MD5 (§5.1, also in Huang et al.).
    specs.append(
        _malware(
            "iopfail",
            None,
            21,
            18,
            leaf_bits=512,
            hash_name="md5",
            reuses_key=True,
            cn="IopFailZeroAccessCreate",
        )
    )

    # ---- §6.4: second-study malware discoveries.
    specs.append(_malware("objectify", "Objectify Media Inc", 0, 1069))
    specs.append(_malware("superfish", "Superfish, Inc.", 0, 610, leaf_bits=1024))
    specs.append(_malware("wiredtools", "WiredTools LTD", 0, 131))
    specs.append(
        _malware("widgits", "Internet Widgits Pty Ltd", 0, 67, leaf_bits=1024)
    )
    specs.append(_malware("impressx", "ImpressX OU", 0, 16))

    # "kowsar" — 268 connections from 266 IPs across many countries;
    # either a popular personal firewall or a botnet (§6.4).
    specs.append(
        ProductSpec(
            profile=ProxyProfile(
                key="kowsar",
                issuer=_name(org="kowsar", cn="kowsar"),
                category=ProxyCategory.UNKNOWN,
                leaf_key_bits=1024,
                hash_name="sha1",
                forged_upstream=ForgedUpstreamPolicy.MASK,
            ),
            study1_weight=0,
            study2_weight=268,
        )
    )
    # "DSP" — Ireland's Department of Social Protection: 204
    # connections, one egress IP (a corporate firewall).
    specs.append(
        ProductSpec(
            profile=ProxyProfile(
                key="dsp",
                issuer=_name(org="DSP", cn="DSP Gateway"),
                category=ProxyCategory.ORGANIZATION,
                leaf_key_bits=2048,
                hash_name="sha1",
            ),
            study1_weight=0,
            study2_weight=204,
            country_bias={"IE": 1.0, "*": 0.0},
            egress_plan={"IE": 1},
        )
    )
    # LG UPLUS and smaller telecoms (§6.1, study 2).
    specs.append(
        ProductSpec(
            profile=ProxyProfile(
                key="lg-uplus",
                issuer=_name(org="LG UPLUS", cn="LG UPLUS Web Gateway"),
                category=ProxyCategory.TELECOM,
                leaf_key_bits=2048,
                hash_name="sha1",
                min_tls_version=(3, 1),
            ),
            study1_weight=0,
            study2_weight=375,
            country_bias={"KR": 1.0, "*": 0.0},
        )
    )
    specs.append(
        ProductSpec(
            profile=ProxyProfile(
                key="telecom-other",
                issuer=_name(org="Axis Telecom", cn="Carrier Gateway CA"),
                # "Another four telecom company names were reported from
                # an additional 72 connections" (§6.1).
                issuer_variants=(
                    _name(org="Axis Telecom", cn="Carrier Gateway CA"),
                    _name(org="Vodanet Telekom", cn="Vodanet Gateway"),
                    _name(org="ClaroCom Telecom", cn="ClaroCom Proxy"),
                    _name(org="T-Net Mobile Network", cn="T-Net Gateway"),
                ),
                category=ProxyCategory.TELECOM,
                leaf_key_bits=2048,
                hash_name="sha1",
            ),
            study1_weight=0,
            study2_weight=72,
        )
    )
    # "Information Technology" — 33 connections from 3 unrelated IPs.
    specs.append(
        ProductSpec(
            profile=ProxyProfile(
                key="information-technology",
                issuer=_name(org="Information Technology", cn="Information Technology"),
                category=ProxyCategory.UNKNOWN,
                leaf_key_bits=1024,
                hash_name="sha1",
            ),
            study1_weight=0,
            study2_weight=33,
            country_bias={"JP": 1.0, "NL": 1.0, "US": 1.0, "*": 0.0},
            egress_plan={"JP": 1, "NL": 1, "US": 1},
        )
    )
    # "MYInternetS" — 36 connections from 6 ISPs, five Danish.
    specs.append(
        ProductSpec(
            profile=ProxyProfile(
                key="myinternets",
                issuer=_name(org="MYInternetS", cn="MYInternetS"),
                category=ProxyCategory.UNKNOWN,
                leaf_key_bits=1024,
                hash_name="sha1",
            ),
            study1_weight=0,
            study2_weight=36,
            country_bias={"DK": 5.0, "US": 1.0, "*": 0.0},
            egress_plan={"DK": 5, "US": 1},
        )
    )

    # ---- Aggregate tails: the long tail of small issuers ("Other").
    # Each tail profile rotates through several issuer names per client
    # bucket, standing in for the paper's 332 distinct small issuers.
    specs.append(
        ProductSpec(
            profile=ProxyProfile(
                key="other-business-fw",
                issuer=_name(org="Perimeter Gateway Inc", cn="Corporate TLS Inspection"),
                issuer_variants=(
                    _name(org="Perimeter Gateway Inc", cn="Corporate TLS Inspection"),
                    _name(org="BlueRock Networks", cn="BlueRock UTM CA"),
                    _name(org="Sentinel Appliances", cn="Sentinel Proxy Root"),
                    _name(org="IronPort Systems", cn="Web Security Appliance"),
                ),
                category=ProxyCategory.BUSINESS_FIREWALL,
                leaf_key_bits=2048,
                hash_name="sha1",
                min_upstream_key_bits=1024,
                min_tls_version=(3, 1),
            ),
            study1_weight=69,
            study2_weight=1231,
        )
    )
    specs.append(
        ProductSpec(
            profile=ProxyProfile(
                key="other-personal-fw",
                issuer=_name(org="HomeShield Software", cn="HomeShield CA"),
                issuer_variants=(
                    _name(org="HomeShield Software", cn="HomeShield CA"),
                    _name(org="PC Guardian", cn="PC Guardian Root"),
                    _name(org="SafeSurf Labs", cn="SafeSurf Personal CA"),
                ),
                category=ProxyCategory.PERSONAL_FIREWALL,
                leaf_key_bits=2048,
                hash_name="sha1",
                # The long tail of home firewalls skips hostname checks.
                validates_hostname=False,
            ),
            study1_weight=11,
            study2_weight=536,
        )
    )
    specs.append(
        _firewall(
            "other-parental",
            "SafeEyes Family",
            5,
            0,
            category=ProxyCategory.PARENTAL_CONTROL,
        )
    )
    specs.append(
        ProductSpec(
            profile=ProxyProfile(
                key="other-org",
                issuer=_name(
                    org="Lawrence Livermore National Laboratory", cn="LLNL Proxy CA"
                ),
                issuer_variants=(
                    _name(
                        org="Lawrence Livermore National Laboratory",
                        cn="LLNL Proxy CA",
                    ),
                    _name(org="Lincoln Financial Group", cn="LFG Gateway"),
                    _name(org="Granite Manufacturing", cn="Granite IT CA"),
                    _name(org="Pacific Credit Union", cn="PCU Gateway"),
                    _name(org="Mercy Health System", cn="MHS Web Filter"),
                    _name(org="Northwind Logistics", cn="Northwind Proxy"),
                    _name(org="Helios Energy", cn="Helios Gateway CA"),
                    _name(org="Meridian Insurance Group", cn="Meridian CA"),
                ),
                category=ProxyCategory.ORGANIZATION,
                leaf_key_bits=2048,
                hash_name="sha1",
            ),
            study1_weight=1038,
            study2_weight=2228,
        )
    )
    specs.append(
        ProductSpec(
            profile=ProxyProfile(
                key="other-school",
                issuer=_name(org="Provo School District", cn="PSD Filter CA"),
                issuer_variants=(
                    _name(org="Provo School District", cn="PSD Filter CA"),
                    _name(org="Springfield Unified School District", cn="SUSD Proxy"),
                    _name(org="State University of Technology", cn="Campus Gateway"),
                    _name(org="Riverdale College", cn="Riverdale NetFilter"),
                ),
                category=ProxyCategory.SCHOOL,
                leaf_key_bits=2048,
                hash_name="sha1",
                caches_validation=True,
            ),
            study1_weight=32,
            study2_weight=482,
        )
    )
    specs.append(
        ProductSpec(
            profile=ProxyProfile(
                key="other-fw",
                issuer=_name(org="SecurePoint UTM", cn="SecurePoint CA"),
                issuer_variants=(
                    _name(org="SecurePoint UTM", cn="SecurePoint CA"),
                    _name(org="NetAegis Security", cn="NetAegis Root"),
                    _name(org="Bastion Internet Security", cn="Bastion CA"),
                    _name(org="ClearWall Technologies", cn="ClearWall Proxy"),
                    _name(org="Aegis Antivirus", cn="Aegis Web Shield"),
                    _name(org="TrustWave Filter", cn="TW Gateway CA"),
                ),
                category=ProxyCategory.BUSINESS_PERSONAL_FIREWALL,
                leaf_key_bits=2048,
                hash_name="sha1",
            ),
            study1_weight=0,
            study2_weight=3512,
        )
    )
    # Uncategorizable tail — disproportionately from the five targeted
    # countries (§6.1: the Unknown share rose to 10.75%).
    specs.append(
        ProductSpec(
            profile=ProxyProfile(
                key="other-unknown",
                issuer=_name(org="gw-7f3a", cn="gw-7f3a"),
                issuer_variants=(
                    _name(org="gw-7f3a", cn="gw-7f3a"),
                    _name(org="proxy01", cn="proxy01"),
                    _name(org="internal-ca", cn="internal-ca"),
                    _name(org="TLS-GW", cn="TLS-GW"),
                    _name(org="localdomain", cn="localdomain"),
                    _name(org="netsec-ca", cn="netsec-ca"),
                    _name(org="appliance-3", cn="appliance-3"),
                    _name(org="SSLBUMP", cn="SSLBUMP"),
                ),
                category=ProxyCategory.UNKNOWN,
                leaf_key_bits=1024,
                hash_name="sha1",
                forged_upstream=ForgedUpstreamPolicy.MASK,
            ),
            study1_weight=2,
            study2_weight=3669,
            country_bias={"CN": 3.0, "UA": 3.0, "RU": 3.0, "EG": 3.0, "PK": 3.0},
        )
    )
    # Blank (present-but-empty) issuer organizations; with null-issuer
    # these make the 1,518 null-or-blank §6.4 count.
    specs.append(
        ProductSpec(
            profile=ProxyProfile(
                key="blank-issuer",
                issuer=_name(org="", cn=""),
                category=ProxyCategory.UNKNOWN,
                leaf_key_bits=1024,
                hash_name="sha1",
                forged_upstream=ForgedUpstreamPolicy.MASK,
            ),
            study1_weight=9,
            study2_weight=518,
        )
    )
    # Second CA-masquerade group (GeoTrust), completing Table 6's 68.
    specs.append(
        ProductSpec(
            profile=ProxyProfile(
                key="geotrust-masquerade",
                issuer=_name(org="GeoTrust Inc.", cn="GeoTrust Global CA"),
                category=ProxyCategory.CERTIFICATE_AUTHORITY,
                leaf_key_bits=2048,
                hash_name="sha1",
                copies_upstream_issuer=True,
                forged_upstream=ForgedUpstreamPolicy.MASK,
            ),
            study1_weight=0,
            study2_weight=19,
        )
    )

    # ---- §5.2 cryptographic oddities (small, distinctive groups).
    # Seven substitute certs with 2432-bit keys (stronger than the original).
    specs.append(
        _firewall(
            "hifi-2432",
            "Overachiever Security",
            7,
            12,
            leaf_bits=2432,
            category=ProxyCategory.UNKNOWN,
            # Overachieves upstream too: the only 2048-bit key floor.
            posture={
                "min_upstream_key_bits": 2048,
                "rejects_deprecated_hashes": True,
                "min_tls_version": (3, 1),
                "checks_revocation": True,
            },
        )
    )
    # Five signed with SHA-256 (ahead of their time).
    specs.append(
        _firewall(
            "sha256-modern",
            "ModernCrypt Gateway",
            5,
            10,
            hash_name="sha256",
            category=ProxyCategory.UNKNOWN,
            posture={
                "min_upstream_key_bits": 1024,
                "rejects_deprecated_hashes": True,
                "min_tls_version": (3, 1),
                # Ahead of its time on the client leg too.
                "upstream_hello": UpstreamHelloPolicy.MIMIC,
            },
        )
    )
    # MD5 signatures beyond IopFail's (23 total MD5, 21 of them IopFail).
    specs.append(
        _firewall(
            "md5-legacy",
            "LegacyGuard",
            2,
            4,
            leaf_bits=1024,
            hash_name="md5",
            category=ProxyCategory.UNKNOWN,
            # A legacy stack through and through: the substitute leg
            # never speaks above TLS 1.0 whatever the client offers,
            # answers with RC4-MD5 no 2014 browser still offered, and
            # negotiates DEFLATE compression post-CRIME.
            posture={
                "validates_hostname": False,
                "substitute_tls_version": (3, 1),
                "substitute_cipher_suite": 0x0004,
                "substitute_compression_method": 1,
            },
        )
    )
    # Subject rewrites: wildcarded IP subnets (the 51 mismatching
    # subjects) and two certificates for entirely wrong domains.
    specs.append(
        ProductSpec(
            profile=ProxyProfile(
                key="wildcard-subnet-fw",
                issuer=_name(org="Lincoln Financial Group", cn="LFG Proxy CA"),
                category=ProxyCategory.ORGANIZATION,
                leaf_key_bits=1024,
                hash_name="sha1",
                subject_rewrite=SubjectRewrite.WILDCARD_SUBNET,
            ),
            study1_weight=49,
            study2_weight=180,
        )
    )
    specs.append(
        ProductSpec(
            profile=ProxyProfile(
                key="wrong-domain-google",
                issuer=_name(org="Misdirect Systems", cn="Misdirect CA"),
                category=ProxyCategory.UNKNOWN,
                leaf_key_bits=1024,
                hash_name="sha1",
                subject_rewrite=SubjectRewrite.WRONG_DOMAIN,
                wrong_domain="mail.google.com",
            ),
            study1_weight=1,
            study2_weight=4,
        )
    )
    specs.append(
        ProductSpec(
            profile=ProxyProfile(
                key="wrong-domain-microsoft",
                issuer=_name(org="Misdirect Systems", cn="Misdirect CA"),
                category=ProxyCategory.UNKNOWN,
                leaf_key_bits=1024,
                hash_name="sha1",
                subject_rewrite=SubjectRewrite.WRONG_DOMAIN,
                wrong_domain="urs.microsoft.com",
            ),
            study1_weight=1,
            study2_weight=4,
        )
    )
    return specs


_CATALOG: list[ProductSpec] | None = None


def catalog() -> list[ProductSpec]:
    """The process-wide product catalog (profiles are immutable)."""
    global _CATALOG
    if _CATALOG is None:
        _CATALOG = build_catalog()
    return _CATALOG


_CATALOG_BY_KEY: dict[str, ProductSpec] | None = None


def catalog_by_key() -> dict[str, ProductSpec]:
    global _CATALOG_BY_KEY
    if _CATALOG_BY_KEY is None:
        _CATALOG_BY_KEY = {spec.key: spec for spec in catalog()}
    return _CATALOG_BY_KEY


def known_issuer_categories() -> dict[str, ProxyCategory]:
    """Issuer Organization string → category, for the classifier.

    This encodes the paper's manual identification work (web searches
    mapping issuer strings to products).  Products the authors could
    *not* identify (category Unknown — kowsar, MYInternetS, random
    gateway strings) are deliberately absent: the classifier must reach
    Unknown for them on its own, exactly as the paper did.
    """
    mapping: dict[str, ProxyCategory] = {}
    for spec in catalog():
        if spec.category is ProxyCategory.UNKNOWN:
            continue
        for issuer in spec.profile.all_issuers():
            if issuer.organization:
                mapping[issuer.organization] = spec.category
    return mapping
