"""Static datasets calibrating the reproduction to the paper.

The real study measured a population we cannot have (Internet users
behind real interception products).  These modules encode the paper's
published marginals — Tables 1–8 plus the §5/§6 findings — as
sampling weights and behaviour profiles, so the measurement machinery
runs over a synthetic population whose observable statistics match the
paper's.

* :mod:`repro.data.products` — every interception product the paper
  names, with per-study prevalence weights and behaviour profiles.
* :mod:`repro.data.countries` — per-country measurement volumes and
  proxy rates (Tables 3 and 7) plus campaign constants (Table 2).
* :mod:`repro.data.sites` — the probe-site catalog (Table 1) and the
  synthetic Alexa-style universe used by the policy-file scan.
"""
