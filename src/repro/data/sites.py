"""Probe sites (Table 1) and the synthetic Alexa-style universe.

Table 8 gives per-host-type connection volumes; those are encoded here
as per-site success probabilities (not every ad impression manages a
handshake with every site — connectivity, performance and distance all
bite, §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

HOST_TYPE_POPULAR = "Popular"
HOST_TYPE_BUSINESS = "Business"
HOST_TYPE_PORN = "Pornographic"
HOST_TYPE_AUTHORS = "Authors'"

AUTHORS_SITE = "tlsresearch.byu.edu"


@dataclass(frozen=True)
class ProbeSite:
    """One site probed by the measurement tool."""

    hostname: str
    host_type: str
    alexa_rank: int | None = None


# Table 1 — the seventeen third-party sites of the second study, plus
# the authors' site (ranks are plausible placements within the bands
# the paper describes; qq.com's is its real 2014 rank).
STUDY2_SITES: tuple[ProbeSite, ...] = (
    ProbeSite("qq.com", HOST_TYPE_POPULAR, 9),
    ProbeSite("promodj.com", HOST_TYPE_POPULAR, 8200),
    ProbeSite("idwebgame.com", HOST_TYPE_POPULAR, 11500),
    ProbeSite("parsnews.com", HOST_TYPE_POPULAR, 14800),
    ProbeSite("idgameland.com", HOST_TYPE_POPULAR, 19600),
    ProbeSite("vcp.ir", HOST_TYPE_POPULAR, 23900),
    ProbeSite("airdroid.com", HOST_TYPE_BUSINESS, 31000),
    ProbeSite("webhost1.ru", HOST_TYPE_BUSINESS, 52000),
    ProbeSite("restaurantesecia.com.br", HOST_TYPE_BUSINESS, 88000),
    ProbeSite("speedtest.net.in", HOST_TYPE_BUSINESS, 130000),
    ProbeSite("iprank.ir", HOST_TYPE_BUSINESS, 210000),
    ProbeSite("pornclipstv.com", HOST_TYPE_PORN, 61000),
    ProbeSite("porno-be.com", HOST_TYPE_PORN, 95000),
    ProbeSite("pornbasetube.com", HOST_TYPE_PORN, 140000),
    ProbeSite("pornozip.net", HOST_TYPE_PORN, 185000),
    ProbeSite("pornorasskazov.net", HOST_TYPE_PORN, 260000),
)
AUTHORS_PROBE_SITE = ProbeSite(AUTHORS_SITE, HOST_TYPE_AUTHORS, None)


def study2_probe_sites() -> list[ProbeSite]:
    """All 17 probed hosts: the authors' site first (it is tested first,
    §4.2), then the third-party sites."""
    return [AUTHORS_PROBE_SITE, *STUDY2_SITES]


def study1_probe_sites() -> list[ProbeSite]:
    return [AUTHORS_PROBE_SITE]


# Table 8 — proxied connection breakdown by host type.  The connection
# volumes imply per-(impression, site) success probabilities; the
# authors' site, tested first and hosted on well-connected
# infrastructure, succeeds far more often.
TABLE8_CONNECTIONS = {
    HOST_TYPE_POPULAR: 5132342,
    HOST_TYPE_BUSINESS: 1787875,
    HOST_TYPE_PORN: 3004996,
    HOST_TYPE_AUTHORS: 2353717,
}
TABLE8_PROXIED = {
    HOST_TYPE_POPULAR: 20965,
    HOST_TYPE_BUSINESS: 7494,
    HOST_TYPE_PORN: 12458,
    HOST_TYPE_AUTHORS: 9844,
}

# Fraction of ad impressions whose client runs the tool at all (Flash
# present, page not closed early, not a mobile device).
CLIENT_RUN_PROBABILITY = 0.60


def sites_of_type(host_type: str) -> list[ProbeSite]:
    return [s for s in study2_probe_sites() if s.host_type == host_type]


def per_site_success_probability(host_type: str, total_impressions: int) -> float:
    """P(one site of ``host_type`` yields a measurement | client ran tool)."""
    count = len(sites_of_type(host_type))
    runs = total_impressions * CLIENT_RUN_PROBABILITY
    return min(1.0, TABLE8_CONNECTIONS[host_type] / (runs * count))


def synthetic_alexa_universe(size: int = 5000, seed: int = 99) -> list[tuple[str, int, str]]:
    """A ranked (hostname, rank, category) universe for the policy scan.

    The Table 1 sites appear at their catalog ranks with permissive
    policies implied by their presence; the tail is synthetic sites,
    almost none of which serve a permissive policy (matching how rare
    permissive socket policy files were in the real top 1M).
    """
    import random

    rng = random.Random(seed)
    universe: dict[int, tuple[str, str]] = {}
    for site in STUDY2_SITES:
        universe[site.alexa_rank] = (site.hostname, _scan_category(site.host_type))
    rank = 0
    while len(universe) < size:
        rank += 1
        if rank in universe:
            continue
        category = rng.choices(
            ["popular", "business", "porn", "misc"], weights=[20, 30, 10, 40]
        )[0]
        universe[rank] = (f"site{rank}.example", category)
    return [
        (hostname, rank, category)
        for rank, (hostname, category) in sorted(universe.items())
    ][:size]


def _scan_category(host_type: str) -> str:
    return {
        HOST_TYPE_POPULAR: "popular",
        HOST_TYPE_BUSINESS: "business",
        HOST_TYPE_PORN: "porn",
    }[host_type]
