"""Low-level DER tag-length-value primitives.

DER is the canonical subset of BER: definite lengths only, minimal
length octets, and deterministic encodings for every value.  This
module handles the TLV framing; the typed object model built on top of
it lives in :mod:`repro.asn1.types`.
"""

from __future__ import annotations


class Asn1Error(ValueError):
    """Raised for any malformed or non-DER input."""


# Tag class bits (high two bits of the identifier octet).
CLASS_UNIVERSAL = 0x00
CLASS_APPLICATION = 0x40
CLASS_CONTEXT = 0x80
CLASS_PRIVATE = 0xC0

# Constructed bit (bit 6 of the identifier octet).
CONSTRUCTED = 0x20

# Universal tag numbers used by X.509.
TAG_BOOLEAN = 0x01
TAG_INTEGER = 0x02
TAG_BIT_STRING = 0x03
TAG_OCTET_STRING = 0x04
TAG_NULL = 0x05
TAG_OID = 0x06
TAG_UTF8_STRING = 0x0C
TAG_PRINTABLE_STRING = 0x13
TAG_TELETEX_STRING = 0x14
TAG_IA5_STRING = 0x16
TAG_UTC_TIME = 0x17
TAG_GENERALIZED_TIME = 0x18
TAG_SEQUENCE = 0x30  # includes the constructed bit
TAG_SET = 0x31  # includes the constructed bit


def encode_length(length: int) -> bytes:
    """Encode a definite length in the minimal DER form."""
    if length < 0:
        raise Asn1Error(f"negative length: {length}")
    if length < 0x80:
        return bytes([length])
    octets = []
    value = length
    while value:
        octets.append(value & 0xFF)
        value >>= 8
    octets.reverse()
    return bytes([0x80 | len(octets)]) + bytes(octets)


def decode_length(data: bytes, offset: int) -> tuple[int, int]:
    """Decode a DER length at ``offset``.

    Returns ``(length, next_offset)`` where ``next_offset`` points at
    the first content octet.  Rejects indefinite and non-minimal forms,
    which BER allows but DER forbids.
    """
    if offset >= len(data):
        raise Asn1Error("truncated length")
    first = data[offset]
    if first < 0x80:
        return first, offset + 1
    if first == 0x80:
        raise Asn1Error("indefinite length is not DER")
    count = first & 0x7F
    if offset + 1 + count > len(data):
        raise Asn1Error("truncated long-form length")
    raw = data[offset + 1 : offset + 1 + count]
    if raw[0] == 0:
        raise Asn1Error("non-minimal long-form length")
    length = int.from_bytes(raw, "big")
    if length < 0x80:
        raise Asn1Error("long form used for short length")
    return length, offset + 1 + count


def encode_tlv(tag: int, content: bytes) -> bytes:
    """Frame ``content`` under a single-octet ``tag``."""
    if not 0 <= tag <= 0xFF:
        raise Asn1Error(f"tag out of single-octet range: {tag}")
    return bytes([tag]) + encode_length(len(content)) + content


def read_tlv(data: bytes, offset: int = 0) -> tuple[int, bytes, int]:
    """Read one TLV starting at ``offset``.

    Returns ``(tag, content, next_offset)``.  Multi-octet tags are not
    supported (X.509 never needs them).
    """
    if offset >= len(data):
        raise Asn1Error("truncated tag")
    tag = data[offset]
    if tag & 0x1F == 0x1F:
        raise Asn1Error("multi-octet tags are unsupported")
    length, content_start = decode_length(data, offset + 1)
    content_end = content_start + length
    if content_end > len(data):
        raise Asn1Error(
            f"truncated value: need {length} bytes, have {len(data) - content_start}"
        )
    return tag, data[content_start:content_end], content_end


def split_tlvs(data: bytes) -> list[tuple[int, bytes]]:
    """Split ``data`` into consecutive TLVs, requiring full consumption."""
    items = []
    offset = 0
    while offset < len(data):
        tag, content, offset = read_tlv(data, offset)
        items.append((tag, content))
    return items
