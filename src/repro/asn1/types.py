"""Typed ASN.1 value model with DER encode/decode.

Every class carries exactly the state its DER encoding needs, encodes
canonically, and round-trips through :func:`decode`.  Unknown tags
decode to :class:`Raw` so foreign structures survive re-encoding
byte-exactly — important because the measurement pipeline must report
certificates exactly as received.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field

from repro.asn1 import der
from repro.asn1.der import Asn1Error


class Asn1Value:
    """Base class for all ASN.1 values."""

    tag: int = -1

    def encode(self) -> bytes:
        """Return the full DER encoding (tag + length + content)."""
        return der.encode_tlv(self.tag, self.content())

    def content(self) -> bytes:
        """Return the content octets (without tag/length)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Boolean(Asn1Value):
    """ASN.1 BOOLEAN; DER requires 0xFF for TRUE."""

    value: bool
    tag: int = field(default=der.TAG_BOOLEAN, init=False, repr=False)

    def content(self) -> bytes:
        return b"\xff" if self.value else b"\x00"

    @classmethod
    def from_content(cls, content: bytes) -> "Boolean":
        if len(content) != 1:
            raise Asn1Error("BOOLEAN content must be one octet")
        return cls(content[0] != 0)


@dataclass(frozen=True)
class Integer(Asn1Value):
    """ASN.1 INTEGER holding an arbitrary-precision Python int."""

    value: int
    tag: int = field(default=der.TAG_INTEGER, init=False, repr=False)

    def content(self) -> bytes:
        value = self.value
        if value == 0:
            return b"\x00"
        length = (value.bit_length() + 8) // 8 if value > 0 else None
        if value > 0:
            return value.to_bytes(length, "big")
        # Two's complement for negatives.
        length = 1
        while not -(1 << (8 * length - 1)) <= value < (1 << (8 * length - 1)):
            length += 1
        return value.to_bytes(length, "big", signed=True)

    @classmethod
    def from_content(cls, content: bytes) -> "Integer":
        if not content:
            raise Asn1Error("INTEGER with empty content")
        if len(content) > 1:
            if content[0] == 0x00 and not content[1] & 0x80:
                raise Asn1Error("non-minimal INTEGER (leading zero)")
            if content[0] == 0xFF and content[1] & 0x80:
                raise Asn1Error("non-minimal INTEGER (leading ones)")
        return cls(int.from_bytes(content, "big", signed=True))


@dataclass(frozen=True)
class BitString(Asn1Value):
    """ASN.1 BIT STRING.

    Only whole-byte strings (``unused_bits == 0``) are produced by this
    code base, but arbitrary unused-bit counts are preserved on decode
    so foreign certificates round-trip.
    """

    data: bytes
    unused_bits: int = 0
    tag: int = field(default=der.TAG_BIT_STRING, init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.unused_bits <= 7:
            raise Asn1Error("unused_bits must be 0..7")
        if self.unused_bits and not self.data:
            raise Asn1Error("unused bits in empty BIT STRING")

    def content(self) -> bytes:
        return bytes([self.unused_bits]) + self.data

    @classmethod
    def from_content(cls, content: bytes) -> "BitString":
        if not content:
            raise Asn1Error("BIT STRING with empty content")
        return cls(content[1:], content[0])


@dataclass(frozen=True)
class OctetString(Asn1Value):
    """ASN.1 OCTET STRING."""

    data: bytes
    tag: int = field(default=der.TAG_OCTET_STRING, init=False, repr=False)

    def content(self) -> bytes:
        return self.data

    @classmethod
    def from_content(cls, content: bytes) -> "OctetString":
        return cls(content)


@dataclass(frozen=True)
class Null(Asn1Value):
    """ASN.1 NULL."""

    tag: int = field(default=der.TAG_NULL, init=False, repr=False)

    def content(self) -> bytes:
        return b""

    @classmethod
    def from_content(cls, content: bytes) -> "Null":
        if content:
            raise Asn1Error("NULL with non-empty content")
        return cls()


@dataclass(frozen=True)
class ObjectIdentifier(Asn1Value):
    """ASN.1 OBJECT IDENTIFIER held as a dotted string, e.g. ``2.5.4.3``."""

    dotted: str
    tag: int = field(default=der.TAG_OID, init=False, repr=False)

    def __post_init__(self) -> None:
        arcs = self.arcs()
        if len(arcs) < 2:
            raise Asn1Error(f"OID needs at least two arcs: {self.dotted!r}")
        if arcs[0] > 2 or (arcs[0] < 2 and arcs[1] > 39):
            raise Asn1Error(f"invalid OID root arcs: {self.dotted!r}")

    def arcs(self) -> tuple[int, ...]:
        try:
            return tuple(int(part) for part in self.dotted.split("."))
        except ValueError as exc:
            raise Asn1Error(f"bad OID {self.dotted!r}") from exc

    @property
    def name(self) -> str:
        """Human-readable name if registered, else the dotted form."""
        from repro.asn1.oids import oid_name

        return oid_name(self.dotted)

    def content(self) -> bytes:
        arcs = self.arcs()
        out = bytearray(_encode_base128(arcs[0] * 40 + arcs[1]))
        for arc in arcs[2:]:
            out.extend(_encode_base128(arc))
        return bytes(out)

    @classmethod
    def from_content(cls, content: bytes) -> "ObjectIdentifier":
        if not content:
            raise Asn1Error("OID with empty content")
        values = []
        acc = 0
        started = False
        for i, byte in enumerate(content):
            if not started and byte == 0x80:
                raise Asn1Error("non-minimal OID arc")
            started = True
            acc = (acc << 7) | (byte & 0x7F)
            if not byte & 0x80:
                values.append(acc)
                acc = 0
                started = False
        if started:
            raise Asn1Error("truncated OID arc")
        first = values[0]
        if first < 40:
            arcs = [0, first]
        elif first < 80:
            arcs = [1, first - 40]
        else:
            arcs = [2, first - 80]
        arcs.extend(values[1:])
        return cls(".".join(str(a) for a in arcs))


def _encode_base128(value: int) -> bytes:
    if value < 0:
        raise Asn1Error("negative OID arc")
    chunks = [value & 0x7F]
    value >>= 7
    while value:
        chunks.append(0x80 | (value & 0x7F))
        value >>= 7
    chunks.reverse()
    return bytes(chunks)


class _StringValue(Asn1Value):
    """Shared behaviour for the ASN.1 character-string family."""

    encoding = "ascii"

    def __init__(self, value: str) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.value!r})"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.value == other.value

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.value))

    def content(self) -> bytes:
        return self.value.encode(self.encoding)

    @classmethod
    def from_content(cls, content: bytes):
        try:
            return cls(content.decode(cls.encoding))
        except UnicodeDecodeError as exc:
            raise Asn1Error(f"bad {cls.__name__} content") from exc


class Utf8String(_StringValue):
    tag = der.TAG_UTF8_STRING
    encoding = "utf-8"


class PrintableString(_StringValue):
    tag = der.TAG_PRINTABLE_STRING


class TeletexString(_StringValue):
    # Real TeletexString is T.61; latin-1 is the universal in-practice reading.
    tag = der.TAG_TELETEX_STRING
    encoding = "latin-1"


class IA5String(_StringValue):
    tag = der.TAG_IA5_STRING


class UtcTime(Asn1Value):
    """ASN.1 UTCTime (two-digit year, as used by certificate validity)."""

    tag = der.TAG_UTC_TIME

    def __init__(self, value: _dt.datetime) -> None:
        if value.tzinfo is None:
            value = value.replace(tzinfo=_dt.timezone.utc)
        self.value = value.astimezone(_dt.timezone.utc).replace(microsecond=0)

    def __repr__(self) -> str:
        return f"UtcTime({self.value.isoformat()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UtcTime) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("UtcTime", self.value))

    def content(self) -> bytes:
        return self.value.strftime("%y%m%d%H%M%SZ").encode("ascii")

    @classmethod
    def from_content(cls, content: bytes) -> "UtcTime":
        text = content.decode("ascii", errors="replace")
        if len(text) != 13 or not text.endswith("Z"):
            raise Asn1Error(f"bad UTCTime {text!r}")
        year = int(text[0:2])
        # RFC 5280: YY >= 50 means 19YY, else 20YY.
        year += 1900 if year >= 50 else 2000
        try:
            value = _dt.datetime(
                year,
                int(text[2:4]),
                int(text[4:6]),
                int(text[6:8]),
                int(text[8:10]),
                int(text[10:12]),
                tzinfo=_dt.timezone.utc,
            )
        except ValueError as exc:
            raise Asn1Error(f"bad UTCTime {text!r}") from exc
        return cls(value)


class GeneralizedTime(Asn1Value):
    """ASN.1 GeneralizedTime (four-digit year)."""

    tag = der.TAG_GENERALIZED_TIME

    def __init__(self, value: _dt.datetime) -> None:
        if value.tzinfo is None:
            value = value.replace(tzinfo=_dt.timezone.utc)
        self.value = value.astimezone(_dt.timezone.utc).replace(microsecond=0)

    def __repr__(self) -> str:
        return f"GeneralizedTime({self.value.isoformat()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GeneralizedTime) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("GeneralizedTime", self.value))

    def content(self) -> bytes:
        return self.value.strftime("%Y%m%d%H%M%SZ").encode("ascii")

    @classmethod
    def from_content(cls, content: bytes) -> "GeneralizedTime":
        text = content.decode("ascii", errors="replace")
        if len(text) != 15 or not text.endswith("Z"):
            raise Asn1Error(f"bad GeneralizedTime {text!r}")
        try:
            value = _dt.datetime(
                int(text[0:4]),
                int(text[4:6]),
                int(text[6:8]),
                int(text[8:10]),
                int(text[10:12]),
                int(text[12:14]),
                tzinfo=_dt.timezone.utc,
            )
        except ValueError as exc:
            raise Asn1Error(f"bad GeneralizedTime {text!r}") from exc
        return cls(value)


class Sequence(Asn1Value):
    """ASN.1 SEQUENCE of arbitrary values."""

    tag = der.TAG_SEQUENCE

    def __init__(self, items: list[Asn1Value] | tuple[Asn1Value, ...] = ()) -> None:
        self.items = list(items)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.items!r})"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.items == other.items

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index):
        return self.items[index]

    def __iter__(self):
        return iter(self.items)

    def content(self) -> bytes:
        return b"".join(item.encode() for item in self.items)

    @classmethod
    def from_content(cls, content: bytes):
        return cls(decode_all(content))


class Set(Sequence):
    """ASN.1 SET (DER requires sorted encodings; enforced on encode)."""

    tag = der.TAG_SET

    def content(self) -> bytes:
        return b"".join(sorted(item.encode() for item in self.items))


class ContextExplicit(Asn1Value):
    """EXPLICIT [n] context-specific constructed wrapper."""

    def __init__(self, number: int, inner: Asn1Value) -> None:
        if not 0 <= number <= 30:
            raise Asn1Error("context tag number out of range")
        self.number = number
        self.inner = inner
        self.tag = der.CLASS_CONTEXT | der.CONSTRUCTED | number

    def __repr__(self) -> str:
        return f"ContextExplicit({self.number}, {self.inner!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ContextExplicit)
            and self.number == other.number
            and self.inner == other.inner
        )

    def content(self) -> bytes:
        return self.inner.encode()

    @classmethod
    def from_tag_content(cls, tag: int, content: bytes) -> "ContextExplicit":
        inner, rest = decode(content)
        if rest:
            raise Asn1Error("trailing data inside explicit tag")
        return cls(tag & 0x1F, inner)


class ContextPrimitive(Asn1Value):
    """IMPLICIT [n] context-specific primitive value (opaque bytes)."""

    def __init__(self, number: int, data: bytes) -> None:
        if not 0 <= number <= 30:
            raise Asn1Error("context tag number out of range")
        self.number = number
        self.data = data
        self.tag = der.CLASS_CONTEXT | number

    def __repr__(self) -> str:
        return f"ContextPrimitive({self.number}, {self.data!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ContextPrimitive)
            and self.number == other.number
            and self.data == other.data
        )

    def content(self) -> bytes:
        return self.data


class Raw(Asn1Value):
    """A pre-encoded or unrecognised TLV preserved verbatim."""

    def __init__(self, tag: int, raw_content: bytes) -> None:
        self.tag = tag
        self.raw_content = raw_content

    def __repr__(self) -> str:
        return f"Raw(tag=0x{self.tag:02x}, {len(self.raw_content)} bytes)"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Raw)
            and self.tag == other.tag
            and self.raw_content == other.raw_content
        )

    def content(self) -> bytes:
        return self.raw_content


_UNIVERSAL_DECODERS = {
    der.TAG_BOOLEAN: Boolean.from_content,
    der.TAG_INTEGER: Integer.from_content,
    der.TAG_BIT_STRING: BitString.from_content,
    der.TAG_OCTET_STRING: OctetString.from_content,
    der.TAG_NULL: Null.from_content,
    der.TAG_OID: ObjectIdentifier.from_content,
    der.TAG_UTF8_STRING: Utf8String.from_content,
    der.TAG_PRINTABLE_STRING: PrintableString.from_content,
    der.TAG_TELETEX_STRING: TeletexString.from_content,
    der.TAG_IA5_STRING: IA5String.from_content,
    der.TAG_UTC_TIME: UtcTime.from_content,
    der.TAG_GENERALIZED_TIME: GeneralizedTime.from_content,
    der.TAG_SEQUENCE: Sequence.from_content,
    der.TAG_SET: Set.from_content,
}


def decode(data: bytes, offset: int = 0) -> tuple[Asn1Value, bytes]:
    """Decode one DER value; return ``(value, remaining_bytes)``."""
    tag, content, end = der.read_tlv(data, offset)
    rest = data[end:]
    decoder = _UNIVERSAL_DECODERS.get(tag)
    if decoder is not None:
        return decoder(content), rest
    if tag & 0xC0 == der.CLASS_CONTEXT:
        if tag & der.CONSTRUCTED:
            try:
                return ContextExplicit.from_tag_content(tag, content), rest
            except Asn1Error:
                return Raw(tag, content), rest
        return ContextPrimitive(tag & 0x1F, content), rest
    return Raw(tag, content), rest


def decode_all(data: bytes) -> list[Asn1Value]:
    """Decode consecutive DER values until ``data`` is exhausted."""
    values = []
    rest = data
    while rest:
        value, rest = decode(rest)
        values.append(value)
    return values
