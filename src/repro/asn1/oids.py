"""OID registry for the X.509 subset used by the reproduction.

Names follow OpenSSL's short names where they exist so the analysis
output reads like the paper's OpenSSL-derived data.
"""

from __future__ import annotations

# Distinguished-name attribute types.
OID_COMMON_NAME = "2.5.4.3"
OID_SURNAME = "2.5.4.4"
OID_SERIAL_NUMBER = "2.5.4.5"
OID_COUNTRY = "2.5.4.6"
OID_LOCALITY = "2.5.4.7"
OID_STATE = "2.5.4.8"
OID_STREET = "2.5.4.9"
OID_ORGANIZATION = "2.5.4.10"
OID_ORG_UNIT = "2.5.4.11"
OID_EMAIL = "1.2.840.113549.1.9.1"

# Public-key algorithms.
OID_RSA_ENCRYPTION = "1.2.840.113549.1.1.1"

# Signature algorithms (PKCS#1 v1.5 with various digests).
OID_MD5_WITH_RSA = "1.2.840.113549.1.1.4"
OID_SHA1_WITH_RSA = "1.2.840.113549.1.1.5"
OID_SHA256_WITH_RSA = "1.2.840.113549.1.1.11"

# Digest algorithms (for DigestInfo).
OID_MD5 = "1.2.840.113549.2.5"
OID_SHA1 = "1.3.14.3.2.26"
OID_SHA256 = "2.16.840.1.101.3.4.2.1"

# Certificate extensions.
OID_EXT_SUBJECT_KEY_ID = "2.5.29.14"
OID_EXT_KEY_USAGE = "2.5.29.15"
OID_EXT_SUBJECT_ALT_NAME = "2.5.29.17"
OID_EXT_BASIC_CONSTRAINTS = "2.5.29.19"
OID_EXT_AUTHORITY_KEY_ID = "2.5.29.35"
OID_EXT_EXTENDED_KEY_USAGE = "2.5.29.37"

OID_NAMES: dict[str, str] = {
    OID_COMMON_NAME: "CN",
    OID_SURNAME: "SN",
    OID_SERIAL_NUMBER: "serialNumber",
    OID_COUNTRY: "C",
    OID_LOCALITY: "L",
    OID_STATE: "ST",
    OID_STREET: "street",
    OID_ORGANIZATION: "O",
    OID_ORG_UNIT: "OU",
    OID_EMAIL: "emailAddress",
    OID_RSA_ENCRYPTION: "rsaEncryption",
    OID_MD5_WITH_RSA: "md5WithRSAEncryption",
    OID_SHA1_WITH_RSA: "sha1WithRSAEncryption",
    OID_SHA256_WITH_RSA: "sha256WithRSAEncryption",
    OID_MD5: "md5",
    OID_SHA1: "sha1",
    OID_SHA256: "sha256",
    OID_EXT_SUBJECT_KEY_ID: "subjectKeyIdentifier",
    OID_EXT_KEY_USAGE: "keyUsage",
    OID_EXT_SUBJECT_ALT_NAME: "subjectAltName",
    OID_EXT_BASIC_CONSTRAINTS: "basicConstraints",
    OID_EXT_AUTHORITY_KEY_ID: "authorityKeyIdentifier",
    OID_EXT_EXTENDED_KEY_USAGE: "extendedKeyUsage",
}

_NAMES_TO_OIDS = {name: oid for oid, name in OID_NAMES.items()}


def oid_name(dotted: str) -> str:
    """Return the registered short name for ``dotted``, or ``dotted`` itself."""
    return OID_NAMES.get(dotted, dotted)


def oid_by_name(name: str) -> str:
    """Return the dotted OID registered under ``name``.

    Raises ``KeyError`` for unregistered names; callers that accept
    arbitrary OIDs should pass dotted strings directly.
    """
    if name in _NAMES_TO_OIDS:
        return _NAMES_TO_OIDS[name]
    raise KeyError(f"unknown OID name: {name!r}")
