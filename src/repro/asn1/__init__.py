"""ASN.1 DER encoding and decoding.

This package implements the subset of ASN.1 Distinguished Encoding Rules
needed to build, parse and byte-exactly round-trip X.509 certificates:
the universal types used by RFC 5280 (INTEGER, BIT STRING, OCTET STRING,
NULL, OBJECT IDENTIFIER, the string families, UTCTime/GeneralizedTime,
SEQUENCE, SET) plus explicit context-specific tagging.

The public object model lives in :mod:`repro.asn1.types`; every value
knows how to ``encode()`` itself to DER and the module-level
:func:`decode` parses one value from a byte string.  OID names used by
the X.509 layer are registered in :mod:`repro.asn1.oids`.
"""

from repro.asn1.der import (
    Asn1Error,
    decode_length,
    encode_length,
    read_tlv,
    split_tlvs,
)
from repro.asn1.oids import (
    OID_NAMES,
    oid_name,
    oid_by_name,
)
from repro.asn1.types import (
    Asn1Value,
    BitString,
    Boolean,
    ContextExplicit,
    ContextPrimitive,
    GeneralizedTime,
    IA5String,
    Integer,
    Null,
    ObjectIdentifier,
    OctetString,
    PrintableString,
    Raw,
    Sequence,
    Set,
    TeletexString,
    UtcTime,
    Utf8String,
    decode,
    decode_all,
)

__all__ = [
    "Asn1Error",
    "Asn1Value",
    "BitString",
    "Boolean",
    "ContextExplicit",
    "ContextPrimitive",
    "GeneralizedTime",
    "IA5String",
    "Integer",
    "Null",
    "ObjectIdentifier",
    "OctetString",
    "OID_NAMES",
    "PrintableString",
    "Raw",
    "Sequence",
    "Set",
    "TeletexString",
    "UtcTime",
    "Utf8String",
    "decode",
    "decode_all",
    "decode_length",
    "encode_length",
    "oid_by_name",
    "oid_name",
    "read_tlv",
    "split_tlvs",
]
