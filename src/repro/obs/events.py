"""Per-connection handshake event logs for the wire engine.

Every connection a :class:`~repro.proxy.engine.TlsProxyEngine` handles
appends an ordered stream of records — ClientHello seen, upstream
hello sent, upstream chain observed, decision taken, substitute flight
served, relay opened — each carrying the fingerprint digests a
client-side observer could compute.  This is the "what did the proxy
actually do on this flow" record the audit harness dumps when a grade
needs explaining.

The log is bounded: past ``limit`` events it drops new records (and
counts the drops), so a paper-scale wire run cannot grow it without
bound.  Event *counts* also land on the attached registry as
deterministic counters, so aggregate handshake behaviour survives even
when the detailed records rotate out.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HandshakeEvent:
    """One ordered record in a connection's handshake history."""

    connection: int
    seq: int
    event: str
    detail: tuple[tuple[str, object], ...] = ()

    def to_dict(self) -> dict:
        return {
            "connection": self.connection,
            "seq": self.seq,
            "event": self.event,
            "detail": dict(self.detail),
        }


class HandshakeEventLog:
    """Ordered, bounded event records plus per-event counters."""

    def __init__(self, limit: int = 512, registry=None) -> None:
        self.limit = limit
        self.registry = registry
        self.records: list[HandshakeEvent] = []
        self.dropped = 0
        self._connections = 0
        self._seq = 0

    def connection(self) -> int:
        """Allocate the next connection id."""
        conn = self._connections
        self._connections += 1
        return conn

    def record(self, connection: int, event: str, **detail) -> None:
        """Append one event (drops past the limit, but always counts)."""
        if self.registry is not None:
            self.registry.inc("handshake.events", event=event)
        if len(self.records) >= self.limit:
            self.dropped += 1
            if self.registry is not None:
                self.registry.inc("handshake.events_dropped")
            return
        self.records.append(
            HandshakeEvent(
                connection=connection,
                seq=self._seq,
                event=event,
                detail=tuple(sorted(detail.items())),
            )
        )
        self._seq += 1

    def for_connection(self, connection: int) -> list[HandshakeEvent]:
        return [e for e in self.records if e.connection == connection]

    def to_dicts(self) -> list[dict]:
        """JSON-ready dump, in arrival order."""
        return [event.to_dict() for event in self.records]

    def __len__(self) -> int:
        return len(self.records)
