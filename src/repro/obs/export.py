"""Exporters for :class:`~repro.obs.metrics.MetricsRegistry` snapshots.

Two formats:

* **JSON** — the snapshot dict verbatim, sorted keys.  Lossless:
  ``MetricsRegistry.from_snapshot(json.loads(...))`` round-trips, which
  the unit suite asserts.  This is what ``--metrics-out`` writes and
  what CI diffs for worker-count determinism.
* **Prometheus text** — the conventional ``name{labels} value``
  exposition format, for scraping or eyeballing.  Metric names are
  sanitised (dots → underscores, ``repro_`` prefix); histograms emit
  cumulative ``_bucket``/``_sum``/``_count`` series and spans emit
  ``repro_span_seconds_total`` / ``repro_span_count`` per path.
"""

from __future__ import annotations

import json
import re

from repro.obs.metrics import (
    MetricsRegistry,
    SECTION_DETERMINISTIC,
    SECTION_PROCESS,
    SECTION_TIMING,
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_KEY_RE = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")


def _snapshot_of(registry_or_snapshot) -> dict:
    if isinstance(registry_or_snapshot, MetricsRegistry):
        return registry_or_snapshot.snapshot()
    return registry_or_snapshot


def to_json(registry_or_snapshot, indent: int = 2) -> str:
    """Canonical JSON text (sorted keys — byte-comparable)."""
    return json.dumps(_snapshot_of(registry_or_snapshot), indent=indent, sort_keys=True)


def write_json(registry_or_snapshot, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_json(registry_or_snapshot) + "\n")


def read_json(path) -> MetricsRegistry:
    with open(path, "r", encoding="utf-8") as handle:
        return MetricsRegistry.from_snapshot(json.load(handle))


def _prom_series(key: str) -> str:
    """``name{a=b}`` snapshot key → sanitised Prometheus series."""
    match = _KEY_RE.match(key)
    assert match is not None
    name = "repro_" + _NAME_RE.sub("_", match.group("name").replace(".", "_"))
    labels = match.group("labels")
    if not labels:
        return name
    pairs = []
    for pair in labels.split(","):
        label, _, value = pair.partition("=")
        pairs.append(f'{_NAME_RE.sub("_", label)}="{value}"')
    return f"{name}{{{','.join(pairs)}}}"


def _prom_series_with(base: str, extra: str) -> str:
    """Insert an extra label into an already-rendered series name."""
    if base.endswith("}"):
        return base[:-1] + "," + extra + "}"
    return base + "{" + extra + "}"


def to_prometheus(registry_or_snapshot) -> str:
    """Prometheus text-exposition rendering of a snapshot."""
    snap = _snapshot_of(registry_or_snapshot)
    lines: list[str] = []
    det = snap.get(SECTION_DETERMINISTIC, {})
    proc = snap.get(SECTION_PROCESS, {})
    for section, kind in ((det, "deterministic"), (proc, "process")):
        for store in ("counters", "gauges"):
            for key, value in section.get(store, {}).items():
                series = _prom_series_with(_prom_series(key), f'section="{kind}"')
                lines.append(f"{series} {value}")
    for key, payload in det.get("histograms", {}).items():
        # Suffixes attach to the metric *name*, never after the labels:
        # ``repro_sizes_bucket{kind="a",le="10"}``.
        match = _KEY_RE.match(key)
        assert match is not None
        base_labels = match.group("labels")
        suffixed = {
            suffix: _prom_series(
                match.group("name")
                + suffix
                + (f"{{{base_labels}}}" if base_labels else "")
            )
            for suffix in ("_bucket", "_sum", "_count")
        }
        cumulative = 0
        for bound, count in zip(payload["bounds"], payload["counts"]):
            cumulative += count
            bucket = _prom_series_with(suffixed["_bucket"], f'le="{bound}"')
            lines.append(f"{bucket} {cumulative}")
        inf_bucket = _prom_series_with(suffixed["_bucket"], 'le="+Inf"')
        lines.append(f"{inf_bucket} {cumulative + payload['inf']}")
        lines.append(f"{suffixed['_sum']} {payload['sum']}")
        lines.append(f"{suffixed['_count']} {payload['count']}")
    for path, stats in snap.get(SECTION_TIMING, {}).get("spans", {}).items():
        lines.append(f'repro_span_seconds_total{{span="{path}"}} {stats["total_s"]}')
        lines.append(f'repro_span_count{{span="{path}"}} {stats["count"]}')
    return "\n".join(lines) + "\n"
