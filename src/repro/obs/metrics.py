"""The telemetry registry: named metrics plus a lightweight span tracer.

The paper's measurement tool lived or died by being able to account
for every report it collected; this module gives the reproduction the
same accounting discipline.  One :class:`MetricsRegistry` holds three
strictly separated sections:

* **deterministic** — counters, gauges and fixed-bucket histograms
  whose values are a pure function of ``(seed, config)``: event
  counts, scenario verdict tallies, bytes on the wire.  Determinism
  tests pin this section byte-for-byte across worker counts and
  executor kinds, exactly like the report database itself.
* **process** — counters that depend on process boundaries and
  scheduling: RSA generations, vault hits, forge-cache hits.  Real
  and useful, but a 4-worker run legitimately differs from a serial
  one (each process pays its own cache misses), so they must never
  leak into the deterministic section.
* **timing** — monotonic span durations (:meth:`MetricsRegistry.span`)
  aggregated into a per-phase profile.  These feed benchmarks and the
  ``render_metrics_table`` phase profile; they are never compared for
  equality.

Snapshots are plain JSON-serialisable dicts.  :meth:`merge_snapshot`
folds a snapshot back into a registry — sub-shard workers return
snapshots that the parent merges in fixed plan order, mirroring how
the report database itself is merged, which is what makes the
deterministic section worker-count invariant.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

SECTION_DETERMINISTIC = "deterministic"
SECTION_PROCESS = "process"
SECTION_TIMING = "timing"

# Fixed bucket bounds used by the study's shard-size histogram; shared
# here so exports and tests agree on the shape.
SHARD_SESSION_BUCKETS = (100, 1_000, 5_000, 10_000, 25_000, 50_000, 100_000)

# Bucket bounds for the report store's rows-per-flush histogram
# (store.batch_rows): how well ingest is amortising its writes.
INGEST_BATCH_BUCKETS = (1, 16, 64, 256, 1_024, 4_096, 16_384)

# Bucket bounds for fault-injection backoff delays (cooperative ticks):
# the retry schedule is exponential with cap 64, so powers of two.
BACKOFF_TICK_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)


def metric_key(name: str, labels: dict[str, object]) -> str:
    """Stable string key for ``name`` + ``labels``.

    Labels are sorted, so the same logical series always lands on the
    same key — the property snapshot equality rests on.
    """
    if not labels:
        return name
    rendered = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{rendered}}}"


class _Counter:
    """Handle to one counter series (hot-loop friendly)."""

    __slots__ = ("_store", "_key", "_lock")

    def __init__(self, store: dict, key: str, lock: threading.RLock) -> None:
        self._store = store
        self._key = key
        self._lock = lock

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._store[self._key] = self._store.get(self._key, 0) + n

    @property
    def value(self) -> int:
        return self._store.get(self._key, 0)


class _Gauge:
    """Handle to one gauge series (last value wins)."""

    __slots__ = ("_store", "_key", "_lock")

    def __init__(self, store: dict, key: str, lock: threading.RLock) -> None:
        self._store = store
        self._key = key
        self._lock = lock

    def set(self, value) -> None:
        with self._lock:
            self._store[self._key] = value

    @property
    def value(self):
        return self._store.get(self._key)


class Histogram:
    """Fixed-bucket histogram (cumulative counts are derived on export).

    ``bounds`` are inclusive upper edges; values above the last bound
    land in the implicit +Inf bucket.  Counts and the running sum are
    exact, so two histograms fed the same values are byte-identical.
    """

    __slots__ = ("bounds", "bucket_counts", "inf_count", "count", "total")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * len(bounds)
        self.inf_count = 0
        self.count = 0
        self.total = 0

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.inf_count += 1

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.bucket_counts),
            "inf": self.inf_count,
            "count": self.count,
            "sum": self.total,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        hist = cls(tuple(payload["bounds"]))
        hist.bucket_counts = list(payload["counts"])
        hist.inf_count = payload["inf"]
        hist.count = payload["count"]
        hist.total = payload["sum"]
        return hist

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for index, count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += count
        self.inf_count += other.inf_count
        self.count += other.count
        self.total += other.total


@dataclass
class SpanStats:
    """Aggregate timing for one span path."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = field(default=float("inf"))
    max_s: float = 0.0

    def record(self, duration: float) -> None:
        self.count += 1
        self.total_s += duration
        self.min_s = min(self.min_s, duration)
        self.max_s = max(self.max_s, duration)

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": round(self.total_s, 6),
            "min_s": round(self.min_s, 6),
            "max_s": round(self.max_s, 6),
        }

    def merge_dict(self, payload: dict) -> None:
        self.count += payload["count"]
        self.total_s += payload["total_s"]
        self.min_s = min(self.min_s, payload["min_s"])
        self.max_s = max(self.max_s, payload["max_s"])


class _Span:
    """Context manager for one timed phase; nests via a per-thread stack."""

    __slots__ = ("_registry", "name", "attrs", "path", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str, attrs: dict) -> None:
        self._registry = registry
        self.name = name
        self.attrs = attrs
        self.path = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        stack = self._registry._span_stack()
        if stack:
            self.path = f"{stack[-1].path}/{self.name}"
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        stack = self._registry._span_stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._registry._record_span(self.path, duration)


class MetricsRegistry:
    """Named metrics, one instance per runner/harness/engine.

    Thread-safe (the audit battery drains products over a thread
    pool); cheap enough to put on hot paths — a counter increment is a
    dict update under an RLock.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, object] = {}
        self._histograms: dict[str, Histogram] = {}
        self._process_counters: dict[str, int] = {}
        self._process_gauges: dict[str, object] = {}
        self._spans: dict[str, SpanStats] = {}
        self._tls = threading.local()

    # -- deterministic metrics -------------------------------------------

    def counter(self, name: str, **labels) -> _Counter:
        """A deterministic counter: values must be worker-invariant."""
        return _Counter(self._counters, metric_key(name, labels), self._lock)

    def inc(self, name: str, n: int = 1, **labels) -> None:
        self.counter(name, **labels).inc(n)

    def gauge(self, name: str, **labels) -> _Gauge:
        return _Gauge(self._gauges, metric_key(name, labels), self._lock)

    def histogram(
        self, name: str, bounds: tuple[float, ...], **labels
    ) -> Histogram:
        key = metric_key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram(bounds)
            elif hist.bounds != tuple(bounds):
                raise ValueError(f"histogram {key!r} re-declared with new bounds")
        return hist

    # -- process-local metrics -------------------------------------------

    def process_counter(self, name: str, **labels) -> _Counter:
        """A process-local counter: real, but scheduling-dependent."""
        return _Counter(self._process_counters, metric_key(name, labels), self._lock)

    def process_gauge(self, name: str, **labels) -> _Gauge:
        return _Gauge(self._process_gauges, metric_key(name, labels), self._lock)

    # -- spans -----------------------------------------------------------

    def span(self, name: str, **attrs) -> _Span:
        """``with registry.span("study.shard", country=...):`` — a timed
        phase.  Nested spans build slash-separated paths, so the phase
        profile reads as a tree."""
        return _Span(self, name, attrs)

    def _span_stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _record_span(self, path: str, duration: float) -> None:
        with self._lock:
            stats = self._spans.get(path)
            if stats is None:
                stats = self._spans[path] = SpanStats()
            stats.record(duration)

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serialisable view of every section (sorted keys)."""
        with self._lock:
            return {
                SECTION_DETERMINISTIC: {
                    "counters": dict(sorted(self._counters.items())),
                    "gauges": dict(sorted(self._gauges.items())),
                    "histograms": {
                        key: hist.to_dict()
                        for key, hist in sorted(self._histograms.items())
                    },
                },
                SECTION_PROCESS: {
                    "counters": dict(sorted(self._process_counters.items())),
                    "gauges": dict(sorted(self._process_gauges.items())),
                },
                SECTION_TIMING: {
                    "spans": {
                        path: stats.to_dict()
                        for path, stats in sorted(self._spans.items())
                    }
                },
            }

    def deterministic_snapshot(self) -> dict:
        """Just the section determinism tests compare byte-for-byte."""
        return self.snapshot()[SECTION_DETERMINISTIC]

    def merge_snapshot(
        self,
        snap: dict,
        sections: tuple[str, ...] = (
            SECTION_DETERMINISTIC,
            SECTION_PROCESS,
            SECTION_TIMING,
        ),
    ) -> None:
        """Fold a snapshot into this registry.

        Counters and histograms add; gauges take the merged value
        (callers merge in fixed order, so this is deterministic the
        same way record merging is); span stats combine count/total
        and min/max.  ``sections`` restricts the merge — the audit
        fan-out merges only timing+process from its harness, keeping
        the exported deterministic section a pure function of the
        scorecards.
        """
        with self._lock:
            if SECTION_DETERMINISTIC in sections and SECTION_DETERMINISTIC in snap:
                det = snap[SECTION_DETERMINISTIC]
                for key, value in det.get("counters", {}).items():
                    self._counters[key] = self._counters.get(key, 0) + value
                self._gauges.update(det.get("gauges", {}))
                for key, payload in det.get("histograms", {}).items():
                    incoming = Histogram.from_dict(payload)
                    existing = self._histograms.get(key)
                    if existing is None:
                        self._histograms[key] = incoming
                    else:
                        existing.merge(incoming)
            if SECTION_PROCESS in sections and SECTION_PROCESS in snap:
                proc = snap[SECTION_PROCESS]
                for key, value in proc.get("counters", {}).items():
                    self._process_counters[key] = (
                        self._process_counters.get(key, 0) + value
                    )
                self._process_gauges.update(proc.get("gauges", {}))
            if SECTION_TIMING in sections and SECTION_TIMING in snap:
                for path, payload in snap[SECTION_TIMING].get("spans", {}).items():
                    stats = self._spans.get(path)
                    if stats is None:
                        stats = self._spans[path] = SpanStats()
                    stats.merge_dict(payload)

    @classmethod
    def from_snapshot(cls, snap: dict) -> "MetricsRegistry":
        """Rebuild a registry from a snapshot (exporter round-trips)."""
        registry = cls()
        registry.merge_snapshot(snap)
        return registry

    def timing_profile(self) -> dict:
        """The per-phase span profile (what benches embed)."""
        return self.snapshot()[SECTION_TIMING]["spans"]
