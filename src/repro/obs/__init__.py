"""Unified telemetry: metrics registry, span tracing, handshake events.

See :mod:`repro.obs.metrics` for the deterministic/process/timing
taxonomy, :mod:`repro.obs.export` for the JSON and Prometheus
exporters, and :mod:`repro.obs.events` for the wire-engine handshake
event log.
"""

from repro.obs.events import HandshakeEvent, HandshakeEventLog
from repro.obs.export import read_json, to_json, to_prometheus, write_json
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    SECTION_DETERMINISTIC,
    SECTION_PROCESS,
    SECTION_TIMING,
    SHARD_SESSION_BUCKETS,
    SpanStats,
    metric_key,
)

__all__ = [
    "HandshakeEvent",
    "HandshakeEventLog",
    "Histogram",
    "MetricsRegistry",
    "SECTION_DETERMINISTIC",
    "SECTION_PROCESS",
    "SECTION_TIMING",
    "SHARD_SESSION_BUCKETS",
    "SpanStats",
    "metric_key",
    "read_json",
    "to_json",
    "to_prometheus",
    "write_json",
]
