"""Digest registry tying hash names to hashlib, OIDs and signature OIDs."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.asn1 import oids


@dataclass(frozen=True)
class HashAlgorithm:
    """A digest algorithm usable inside PKCS#1 v1.5 signatures."""

    name: str
    digest_oid: str
    signature_oid: str  # <hash>WithRSAEncryption
    digest_size: int

    def digest(self, data: bytes) -> bytes:
        """Hash ``data`` and return the raw digest."""
        return hashlib.new(self.name, data).digest()


MD5 = HashAlgorithm("md5", oids.OID_MD5, oids.OID_MD5_WITH_RSA, 16)
SHA1 = HashAlgorithm("sha1", oids.OID_SHA1, oids.OID_SHA1_WITH_RSA, 20)
SHA256 = HashAlgorithm("sha256", oids.OID_SHA256, oids.OID_SHA256_WITH_RSA, 32)

HASH_ALGORITHMS: dict[str, HashAlgorithm] = {
    "md5": MD5,
    "sha1": SHA1,
    "sha256": SHA256,
}

_BY_SIGNATURE_OID = {alg.signature_oid: alg for alg in HASH_ALGORITHMS.values()}


def hash_by_name(name: str) -> HashAlgorithm:
    """Look up a digest by name (``md5``/``sha1``/``sha256``)."""
    try:
        return HASH_ALGORITHMS[name.lower()]
    except KeyError:
        raise KeyError(f"unsupported hash algorithm: {name!r}") from None


def hash_by_signature_oid(dotted: str) -> HashAlgorithm:
    """Map a ``<hash>WithRSAEncryption`` OID to its digest algorithm."""
    try:
        return _BY_SIGNATURE_OID[dotted]
    except KeyError:
        raise KeyError(f"unsupported signature algorithm OID: {dotted}") from None
