"""Probabilistic prime generation (Miller–Rabin).

Generation is driven by a caller-supplied ``random.Random`` so the
entire reproduction is deterministic for a given seed.

Candidate screening is batched: instead of trial-dividing by every
small prime, a staged pair of ``gcd`` calls against precomputed
products of all primes below 2^11 and 2^16 rejects ~95 % of random
odd composites before any modular exponentiation runs — the
pure-Python bigint batching trick that makes RSA key generation the
study can afford.  The first product is small enough that its gcd is
nearly free for the common case; only survivors pay for the second,
bigger product.  Because every composite below ``_STAGE2_LIMIT**2``
has a factor in one of the products, numbers that small are decided
exactly, without Miller–Rabin at all.
"""

from __future__ import annotations

import math
import random

_STAGE1_LIMIT = 2048
_STAGE2_LIMIT = 65536


def _sieve(limit: int) -> list[int]:
    flags = bytearray([1]) * (limit + 1)
    flags[0] = flags[1] = 0
    for i in range(2, int(limit**0.5) + 1):
        if flags[i]:
            flags[i * i :: i] = bytearray(len(flags[i * i :: i]))
    return [i for i, keep in enumerate(flags) if keep]


# Screening tables, built eagerly at import: worker threads and
# processes call straight into ``is_probable_prime``, and a lazily
# initialised module global could be observed half-published.
_SMALL_PRIMES: list[int] = _sieve(_STAGE2_LIMIT)
_SMALL_PRIME_SET: frozenset[int] = frozenset(_SMALL_PRIMES)
_STAGE1_SPLIT = sum(1 for p in _SMALL_PRIMES if p < _STAGE1_LIMIT)
_STAGE1_PRODUCT = math.prod(_SMALL_PRIMES[:_STAGE1_SPLIT])
_STAGE2_PRODUCT = math.prod(_SMALL_PRIMES[_STAGE1_SPLIT:])


def _small_primes() -> list[int]:
    return _SMALL_PRIMES


def is_probable_prime(n: int, rounds: int = 20, rng: random.Random | None = None) -> bool:
    """Miller–Rabin primality test with ``rounds`` random bases."""
    if n < 2:
        return False
    if n <= _SMALL_PRIMES[-1]:
        return n in _SMALL_PRIME_SET
    if math.gcd(n, _STAGE1_PRODUCT) != 1:
        return False
    if math.gcd(n, _STAGE2_PRODUCT) != 1:
        return False
    if n < _STAGE2_LIMIT * _STAGE2_LIMIT:
        # Any composite this small has a factor in a product above.
        return True
    rng = rng or random.Random(0xC0FFEE ^ n)
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


# Random k-bit candidates need far fewer witness rounds than the
# conservative default for adversarial input: after trial division,
# eight rounds push the error probability below 2^-60 for the key
# sizes the study mints (Damgård–Landrock–Pomerance bounds).
_GENERATION_ROUNDS = 8


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime with exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError(f"prime size too small: {bits} bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force bit length and oddness
        if is_probable_prime(candidate, rounds=_GENERATION_ROUNDS, rng=rng):
            return candidate
