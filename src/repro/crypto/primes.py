"""Probabilistic prime generation (Miller–Rabin).

Generation is driven by a caller-supplied ``random.Random`` so the
entire reproduction is deterministic for a given seed.
"""

from __future__ import annotations

import random

# Small primes for cheap trial-division pre-filtering.
_SMALL_PRIMES: list[int] = []


def _sieve(limit: int) -> list[int]:
    flags = bytearray([1]) * (limit + 1)
    flags[0] = flags[1] = 0
    for i in range(2, int(limit**0.5) + 1):
        if flags[i]:
            flags[i * i :: i] = bytearray(len(flags[i * i :: i]))
    return [i for i, keep in enumerate(flags) if keep]


def _small_primes() -> list[int]:
    global _SMALL_PRIMES
    if not _SMALL_PRIMES:
        _SMALL_PRIMES = _sieve(2000)
    return _SMALL_PRIMES


def is_probable_prime(n: int, rounds: int = 20, rng: random.Random | None = None) -> bool:
    """Miller–Rabin primality test with ``rounds`` random bases."""
    if n < 2:
        return False
    for p in _small_primes():
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or random.Random(0xC0FFEE ^ n)
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime with exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError(f"prime size too small: {bits} bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force bit length and oddness
        if is_probable_prime(candidate, rounds=20, rng=rng):
            return candidate
