"""Content-addressed, disk-persistent RSA key-material vault.

Pure-Python 2048-bit key generation costs seconds, and a sharded run
pays it once *per worker process* — the parent's in-memory
:class:`~repro.crypto.keystore.KeyStore` cache does not cross a fork.
Real interception appliances amortise one long-lived CA key across
every connection they ever intercept (Waked et al., NDSS 2018); the
vault gives the reproduction the same economics across processes *and*
across runs.

Design:

* **Content-addressed** — an entry's filename is a Blake2s digest of
  ``(format, seed, label, bits)``, the exact inputs that determine the
  key bytes.  The same slot always lands in the same file, and two
  stores of the same slot write identical content.
* **Single file per key, atomic rename** — writers serialise to a
  unique temp file in the final directory and ``os.replace`` it into
  place.  Readers either see a complete entry or none; concurrent
  writers race harmlessly because every writer of a slot produces the
  same bytes (key generation is deterministic per slot).
* **CRT constants travel with the key** — ``dp``/``dq``/``q_inv`` are
  serialised and re-installed on load, so a vault-loaded key signs at
  full speed from its first signature.

Entries are verified on load (field echo, ``p*q == n``, modulus size);
anything unreadable or inconsistent is treated as a miss and simply
regenerated.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path

from repro.crypto.rsa import RsaKeyPair

# Bump when the serialisation or the key-derivation inputs change; old
# entries then miss (different address) instead of loading stale keys.
VAULT_FORMAT = 1

_ENV_VAR = "REPRO_KEY_VAULT"


class KeyVault:
    """A directory of serialised :class:`RsaKeyPair` entries."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)

    # -- addressing -------------------------------------------------------

    @staticmethod
    def address(seed: int, label: str, bits: int) -> str:
        """Content address of the ``(seed, label, bits)`` slot."""
        material = "\x1f".join(
            (str(VAULT_FORMAT), str(seed), label, str(bits))
        ).encode("utf-8")
        return hashlib.blake2s(material, digest_size=16).hexdigest()

    def entry_path(self, seed: int, label: str, bits: int) -> Path:
        addr = self.address(seed, label, bits)
        # Two-hex-char fan-out keeps directories small at census scale.
        return self.path / addr[:2] / f"{addr}.json"

    # -- load / store -----------------------------------------------------

    def load(self, seed: int, label: str, bits: int) -> RsaKeyPair | None:
        """Return the stored key for the slot, or ``None`` on any miss.

        Corrupt, truncated or mismatched entries count as misses: the
        caller regenerates (and overwrites) rather than failing a run
        over a bad cache file.
        """
        path = self.entry_path(seed, label, bits)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        try:
            if (
                payload["format"] != VAULT_FORMAT
                or payload["seed"] != seed
                or payload["label"] != label
                or payload["bits"] != bits
            ):
                return None
            n = int(payload["n"], 16)
            e = int(payload["e"], 16)
            d = int(payload["d"], 16)
            p = int(payload["p"], 16)
            q = int(payload["q"], 16)
            dp = int(payload["dp"], 16)
            dq = int(payload["dq"], 16)
            q_inv = int(payload["q_inv"], 16)
        except (KeyError, TypeError, ValueError):
            return None
        if p * q != n or n.bit_length() != bits:
            return None
        if dp != d % (p - 1) or dq != d % (q - 1) or (q_inv * q) % p != 1:
            return None
        return RsaKeyPair.with_cached_crt(
            n=n, e=e, d=d, p=p, q=q, dp=dp, dq=dq, q_inv=q_inv
        )

    def store(self, seed: int, label: str, bits: int, pair: RsaKeyPair) -> bool:
        """Persist ``pair`` for the slot; returns True if the slot was new.

        The write is atomic: a unique temp file in the destination
        directory is ``os.replace``d into place, so a concurrent reader
        never observes a partial entry and a concurrent writer of the
        same slot just wins (or loses) a rename of identical bytes.  An
        existing entry is overwritten — callers only store after a
        miss, so whatever was there was unreadable and is healed.
        """
        path = self.entry_path(seed, label, bits)
        existed = path.exists()
        payload = {
            "format": VAULT_FORMAT,
            "seed": seed,
            "label": label,
            "bits": bits,
            "n": f"{pair.n:x}",
            "e": f"{pair.e:x}",
            "d": f"{pair.d:x}",
            "p": f"{pair.p:x}",
            "q": f"{pair.q:x}",
            "dp": f"{pair.dp:x}",
            "dq": f"{pair.dq:x}",
            "q_inv": f"{pair.q_inv:x}",
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, path)
        return not existed

    # -- maintenance ------------------------------------------------------

    def gc(self, keep_seeds) -> tuple[int, int]:
        """Prune entries whose seed is not in ``keep_seeds``.

        Long-lived CI caches accrete entries for every seed anyone
        ever ran; this keeps the cache bounded by retiring the slots
        no kept seed can ever address again — the address is a digest
        of ``(format, seed, ...)``, so a foreign-seed or stale-format
        entry is dead weight, never a hit.  Unreadable entries and
        orphaned writer temp files are removed too (both are misses by
        definition), and emptied fan-out directories are dropped.
        Returns ``(kept, removed)``.
        """
        keep = {int(seed) for seed in keep_seeds}
        kept = 0
        removed = 0
        if not self.path.is_dir():
            return kept, removed
        for entry in sorted(self.path.glob("*/*.json")):
            try:
                payload = json.loads(entry.read_text(encoding="utf-8"))
                seed = payload["seed"]
                current = payload["format"] == VAULT_FORMAT
            except (OSError, ValueError, KeyError, TypeError):
                seed, current = None, False
            if current and isinstance(seed, int) and seed in keep:
                kept += 1
                continue
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass  # a concurrent writer may have replaced it; skip
        for leftover in sorted(self.path.glob("*/.*.tmp")):
            # A crashed writer's temp file: never addressable, and it
            # keeps the fan-out directory from being dropped.
            try:
                leftover.unlink()
                removed += 1
            except OSError:
                pass
        for child in sorted(self.path.iterdir()):
            if child.is_dir():
                try:
                    child.rmdir()  # only succeeds when emptied
                except OSError:
                    pass
        return kept, removed

    # -- introspection ----------------------------------------------------

    def collect_stats(self, registry) -> dict:
        """Scan the vault into ``registry`` gauges and return a summary.

        Sets ``vault.entries``/``vault.bytes`` totals plus per-seed
        ``vault.entries{seed=N}`` and ``vault.bytes{seed=N}`` gauges
        (unreadable entries land under ``seed=corrupt``), so ``repro
        keys stats`` and exporters read one source of truth instead of
        a bare entry count.  Returns ``{seed: (entries, bytes)}``.
        """
        per_seed: dict[object, list[int]] = {}
        total_entries = 0
        total_bytes = 0
        if self.path.is_dir():
            for entry in sorted(self.path.glob("*/*.json")):
                try:
                    size = entry.stat().st_size
                    seed = json.loads(entry.read_text(encoding="utf-8"))["seed"]
                    if not isinstance(seed, int):
                        seed = "corrupt"
                except (OSError, ValueError, KeyError, TypeError):
                    seed, size = "corrupt", 0
                bucket = per_seed.setdefault(seed, [0, 0])
                bucket[0] += 1
                bucket[1] += size
                total_entries += 1
                total_bytes += size
        registry.gauge("vault.entries").set(total_entries)
        registry.gauge("vault.bytes").set(total_bytes)
        for seed, (entries, size) in per_seed.items():
            registry.gauge("vault.entries", seed=seed).set(entries)
            registry.gauge("vault.bytes", seed=seed).set(size)
        return {seed: tuple(counts) for seed, counts in per_seed.items()}

    def __len__(self) -> int:
        if not self.path.is_dir():
            return 0
        return sum(1 for _ in self.path.glob("*/*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KeyVault({str(self.path)!r}, entries={len(self)})"


def open_vault(
    spec: "KeyVault | str | os.PathLike | None", *, env: bool = True
) -> KeyVault | None:
    """Resolve a vault argument: instance, path, or the environment.

    ``None`` falls back to the ``REPRO_KEY_VAULT`` environment variable
    (unless ``env=False``), so CI can attach a cached vault to every
    process without threading a path through each call site.
    """
    if isinstance(spec, KeyVault):
        return spec
    if spec is not None:
        return KeyVault(spec)
    if env:
        path = os.environ.get(_ENV_VAR)
        if path:
            return KeyVault(path)
    return None
