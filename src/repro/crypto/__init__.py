"""Pure-Python public-key cryptography for certificate issuance.

The paper's substitute certificates are interesting precisely because
of their cryptographic properties — 512/1024-bit key downgrades, MD5
signatures, signatures that do or do not validate back to a trusted
root.  This package implements just enough real RSA (Miller–Rabin key
generation, PKCS#1 v1.5 signing over a DER ``DigestInfo``) that every
certificate in the reproduction carries a genuine, verifiable (or
genuinely broken) signature.

Key generation is deterministic given a seed, and :class:`KeyStore`
pools keys by (bits, label) so that a 2048-bit key is generated at most
once per process — mirroring reality, where an interception product
has one CA key, and the IopFail malware famously shipped a single
512-bit key to every victim.
"""

from repro.crypto.hashes import HASH_ALGORITHMS, HashAlgorithm, hash_by_name
from repro.crypto.keystore import KeyStore, shared_keystore
from repro.crypto.primes import generate_prime, is_probable_prime
from repro.crypto.vault import KeyVault, open_vault
from repro.crypto.rsa import (
    CryptoError,
    RsaKeyPair,
    RsaPublicKey,
    generate_rsa_key,
    pkcs1_sign,
    pkcs1_verify,
)

__all__ = [
    "CryptoError",
    "HASH_ALGORITHMS",
    "HashAlgorithm",
    "KeyStore",
    "KeyVault",
    "open_vault",
    "shared_keystore",
    "RsaKeyPair",
    "RsaPublicKey",
    "generate_prime",
    "generate_rsa_key",
    "hash_by_name",
    "is_probable_prime",
    "pkcs1_sign",
    "pkcs1_verify",
]
