"""Deterministic pooled RSA key generation.

Pure-Python 2048-bit key generation costs seconds; a measurement run
issues hundreds of thousands of substitute certificates.  The pool
resolves the tension the same way the measured ecosystem does: every
product has one CA key it uses forever, and leaf keys are reused per
(product, size) slot.  Keys are derived deterministically from the
store seed and the slot label, so two stores with the same seed hold
identical keys.
"""

from __future__ import annotations

import random
import zlib

from repro.crypto.rsa import RsaKeyPair, generate_rsa_key


class KeyStore:
    """Cache of deterministically generated RSA keys, keyed by slot label."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._cache: dict[tuple[str, int], RsaKeyPair] = {}

    def key(self, label: str, bits: int) -> RsaKeyPair:
        """Return the key for ``(label, bits)``, generating it on first use."""
        slot = (label, bits)
        pair = self._cache.get(slot)
        if pair is None:
            rng = random.Random(self._derive_seed(label, bits))
            pair = generate_rsa_key(bits, rng)
            self._cache[slot] = pair
        return pair

    def _derive_seed(self, label: str, bits: int) -> int:
        material = f"{self._seed}:{label}:{bits}".encode("utf-8")
        return zlib.crc32(material) ^ (self._seed << 16) ^ bits

    def __len__(self) -> int:
        return len(self._cache)

    def preload(self, labels: list[str], bits: int) -> None:
        """Generate keys for many labels up front (useful before timing)."""
        for label in labels:
            self.key(label, bits)


_SHARED: KeyStore | None = None


def shared_keystore(seed: int = 0) -> KeyStore:
    """Process-wide store used by default so key generation amortises.

    The first caller fixes the seed; later callers asking for a
    different seed get a fresh private store instead, keeping
    determinism explicit.
    """
    global _SHARED
    if _SHARED is None:
        _SHARED = KeyStore(seed)
        return _SHARED
    if seed == _SHARED._seed:
        return _SHARED
    return KeyStore(seed)
