"""Deterministic pooled RSA key generation.

Pure-Python 2048-bit key generation costs seconds; a measurement run
issues hundreds of thousands of substitute certificates.  The pool
resolves the tension the same way the measured ecosystem does: every
product has one CA key it uses forever, and leaf keys are reused per
(product, size) slot.  Keys are derived deterministically from the
store seed and the slot label, so two stores with the same seed hold
identical keys.

A store can additionally be backed by a disk-persistent
:class:`~repro.crypto.vault.KeyVault`: the vault is consulted before
any generation, and freshly generated material is written back, so a
warmed vault turns every later ``key()`` call — in this process, in a
worker process, or in next week's run — into a microsecond JSON load
instead of a Miller–Rabin search.
"""

from __future__ import annotations

import random
import zlib

from repro.crypto.rsa import RsaKeyPair, generate_rsa_key
from repro.crypto.vault import KeyVault, open_vault
from repro.obs.metrics import MetricsRegistry


class KeyStore:
    """Cache of deterministically generated RSA keys, keyed by slot label.

    ``vault`` may be a :class:`KeyVault`, a directory path, or ``None``
    (which falls back to the ``REPRO_KEY_VAULT`` environment variable).
    ``keys_generated`` counts actual ``generate_rsa_key`` calls —
    vault and in-memory hits leave it untouched, which is what the
    warm-vault determinism tests assert on.

    Counting lives on a :class:`MetricsRegistry` (``registry``, or a
    private one) as *process* counters — keygen and vault traffic
    depend on process boundaries, never on the data — and the
    historical ``keys_generated``/``vault_hits`` attributes remain as
    live views onto those counters.
    """

    def __init__(self, seed: int = 0, vault=None, registry=None) -> None:
        self._seed = seed
        self._cache: dict[tuple[str, int], RsaKeyPair] = {}
        self._vault: KeyVault | None = open_vault(vault)
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._keys_generated = self.metrics.process_counter(
            "keystore.keys_generated"
        )
        self._vault_hits = self.metrics.process_counter("keystore.vault_hits")
        self._vault_misses = self.metrics.process_counter("keystore.vault_misses")
        self._vault_stores = self.metrics.process_counter("keystore.vault_stores")

    @property
    def vault(self) -> KeyVault | None:
        return self._vault

    @property
    def keys_generated(self) -> int:
        return self._keys_generated.value

    @property
    def vault_hits(self) -> int:
        return self._vault_hits.value

    def key(self, label: str, bits: int) -> RsaKeyPair:
        """Return the key for ``(label, bits)``, generating it on first use."""
        slot = (label, bits)
        pair = self._cache.get(slot)
        if pair is None:
            pair = self._load_or_generate(label, bits)
            self._cache[slot] = pair
        return pair

    def _load_or_generate(self, label: str, bits: int) -> RsaKeyPair:
        if self._vault is not None:
            pair = self._vault.load(self._seed, label, bits)
            if pair is not None:
                self._vault_hits.inc()
                return pair
            self._vault_misses.inc()
        with self.metrics.span("keystore.generate", bits=bits):
            rng = random.Random(self._derive_seed(label, bits))
            pair = generate_rsa_key(bits, rng)
        self._keys_generated.inc()
        if self._vault is not None:
            self._vault.store(self._seed, label, bits, pair)
            self._vault_stores.inc()
        return pair

    def _derive_seed(self, label: str, bits: int) -> int:
        material = f"{self._seed}:{label}:{bits}".encode("utf-8")
        return zlib.crc32(material) ^ (self._seed << 16) ^ bits

    def __len__(self) -> int:
        return len(self._cache)

    def preload(self, labels: list[str], bits: int) -> None:
        """Generate keys for many labels up front (useful before timing)."""
        for label in labels:
            self.key(label, bits)


_SHARED: dict[int, KeyStore] = {}


def shared_keystore(seed: int = 0) -> KeyStore:
    """Process-wide stores, memoised per seed, so keygen amortises.

    Every caller asking for the same seed gets the same store — the
    second subsystem to need seed-7 keys reuses the first one's pool
    instead of paying generation again behind a fresh private store.
    """
    store = _SHARED.get(seed)
    if store is None:
        store = _SHARED[seed] = KeyStore(seed)
    return store
