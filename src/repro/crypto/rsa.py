"""RSA key generation and PKCS#1 v1.5 signatures.

Signatures are computed over a DER ``DigestInfo`` exactly as RFC 8017
§9.2 specifies, so every certificate signature in the reproduction can
be verified (or shown broken) by independent code.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import cached_property

from repro.asn1.types import Null, ObjectIdentifier, OctetString, Sequence
from repro.crypto.hashes import HashAlgorithm
from repro.crypto.primes import generate_prime

DEFAULT_PUBLIC_EXPONENT = 65537


class CryptoError(ValueError):
    """Raised on invalid keys, padding errors, or size mismatches."""


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key (n, e)."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        """Modulus size in bits — the 'public key size' the paper reports."""
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8


@dataclass(frozen=True)
class RsaKeyPair:
    """An RSA key pair; ``d`` is the private exponent."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def public(self) -> RsaPublicKey:
        return RsaPublicKey(self.n, self.e)

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    # CRT constants are fixed by (d, p, q); one key signs every
    # substitute certificate of its product, so they are computed once
    # per key instead of once per signature.  ``cached_property``
    # stores them on the instance without thawing the dataclass.

    @cached_property
    def dp(self) -> int:
        return self.d % (self.p - 1)

    @cached_property
    def dq(self) -> int:
        return self.d % (self.q - 1)

    @cached_property
    def q_inv(self) -> int:
        return pow(self.q, -1, self.p)

    @classmethod
    def with_cached_crt(
        cls, *, n: int, e: int, d: int, p: int, q: int,
        dp: int, dq: int, q_inv: int,
    ) -> "RsaKeyPair":
        """Rebuild a key pair with its CRT constants pre-installed.

        Deserialisers (the key vault) carry ``dp``/``dq``/``q_inv``
        alongside the key so a loaded key signs at full speed without
        recomputing the modular inverse.  ``cached_property`` reads the
        instance ``__dict__`` first, which is also how it writes its
        own cache — seeding it here bypasses the frozen-dataclass
        ``__setattr__`` exactly the way the property itself does.
        """
        pair = cls(n=n, e=e, d=d, p=p, q=q)
        pair.__dict__.update(dp=dp, dq=dq, q_inv=q_inv)
        return pair


def generate_rsa_key(bits: int, rng: random.Random) -> RsaKeyPair:
    """Generate an RSA key pair with an exactly ``bits``-bit modulus."""
    if bits < 32 or bits % 2:
        raise CryptoError(f"unsupported RSA key size: {bits}")
    e = DEFAULT_PUBLIC_EXPONENT
    while True:
        p = generate_prime(bits // 2, rng)
        q = generate_prime(bits // 2, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = pow(e, -1, phi)
        return RsaKeyPair(n=n, e=e, d=d, p=p, q=q)


# DigestInfo DER for a given algorithm differs only in the trailing
# digest bytes (the digest length is fixed per algorithm), so the
# constant prefix is built once and signatures just append the digest.
_DIGEST_INFO_PREFIXES: dict[str, bytes] = {}


def _digest_info_prefix(hash_alg: HashAlgorithm) -> bytes:
    prefix = _DIGEST_INFO_PREFIXES.get(hash_alg.name)
    if prefix is None:
        algorithm = Sequence([ObjectIdentifier(hash_alg.digest_oid), Null()])
        placeholder = bytes(hash_alg.digest_size)
        encoded = Sequence([algorithm, OctetString(placeholder)]).encode()
        assert encoded.endswith(placeholder)
        prefix = encoded[: len(encoded) - hash_alg.digest_size]
        _DIGEST_INFO_PREFIXES[hash_alg.name] = prefix
    return prefix


def _digest_info(hash_alg: HashAlgorithm, data: bytes) -> bytes:
    """DER DigestInfo ::= SEQUENCE { AlgorithmIdentifier, OCTET STRING }."""
    return _digest_info_prefix(hash_alg) + hash_alg.digest(data)


def _pkcs1_pad(digest_info: bytes, key_bytes: int) -> bytes:
    """EMSA-PKCS1-v1_5 padding: 00 01 FF..FF 00 || DigestInfo."""
    padding_len = key_bytes - len(digest_info) - 3
    if padding_len < 8:
        raise CryptoError(
            f"key too small for digest: {key_bytes * 8}-bit key, "
            f"{len(digest_info)}-byte DigestInfo"
        )
    return b"\x00\x01" + b"\xff" * padding_len + b"\x00" + digest_info


def pkcs1_sign(key: RsaKeyPair, hash_alg: HashAlgorithm, data: bytes) -> bytes:
    """Sign ``data`` with RSASSA-PKCS1-v1_5; returns a key-sized signature.

    Uses the CRT optimisation (two half-size exponentiations) — the
    study signs one substitute certificate per proxied connection, so
    the private operation is the hot path of full-scale runs.
    """
    key_bytes = (key.n.bit_length() + 7) // 8
    padded = _pkcs1_pad(_digest_info(hash_alg, data), key_bytes)
    message = int.from_bytes(padded, "big")
    signature = _crt_power(message, key)
    return signature.to_bytes(key_bytes, "big")


def _crt_power(message: int, key: RsaKeyPair) -> int:
    """m^d mod n via the Chinese Remainder Theorem."""
    m1 = pow(message % key.p, key.dp, key.p)
    m2 = pow(message % key.q, key.dq, key.q)
    h = (key.q_inv * (m1 - m2)) % key.p
    return m2 + h * key.q


def synthetic_public_key(bits: int, rng: random.Random) -> tuple[int, int]:
    """A random odd modulus of exactly ``bits`` bits, with e=65537.

    End-entity keys in this reproduction never perform a private
    operation (the probe aborts before the key exchange), so the leaf
    "key" only needs the right *size* — which is what the paper's
    key-strength analysis measures.  Skipping primality testing makes
    full-scale substitute-certificate generation feasible.
    """
    if bits < 16:
        raise CryptoError(f"synthetic key too small: {bits}")
    n = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
    return n, DEFAULT_PUBLIC_EXPONENT


def pkcs1_verify(
    key: RsaPublicKey, hash_alg: HashAlgorithm, data: bytes, signature: bytes
) -> bool:
    """Verify an RSASSA-PKCS1-v1_5 signature; returns False on any mismatch."""
    key_bytes = key.byte_length
    if len(signature) != key_bytes:
        return False
    value = int.from_bytes(signature, "big")
    if value >= key.n:
        return False
    recovered = pow(value, key.e, key.n).to_bytes(key_bytes, "big")
    try:
        expected = _pkcs1_pad(_digest_info(hash_alg, data), key_bytes)
    except CryptoError:
        return False
    # Constant-time comparison is irrelevant in a simulator, but cheap.
    return recovered == expected
