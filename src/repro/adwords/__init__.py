"""Google AdWords campaign simulation (§4).

The ad platform is the study's *sampling mechanism*: budget and CPM
determine how many clients run the tool, geo targeting determines
where they are.  :class:`AdCampaign` models one campaign's economics
(CPM auctions under a daily budget with pacing); the outcomes
regenerate Table 2.
"""

from repro.adwords.campaign import AdCampaign, CampaignOutcome, DayOutcome, run_study2_campaigns

__all__ = ["AdCampaign", "CampaignOutcome", "DayOutcome", "run_study2_campaigns"]
