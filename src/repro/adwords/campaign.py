"""CPM campaign economics.

An AdWords CPM campaign buys impressions at an effective CPM set by
auction competition (well below the $10 Max CPM bid the authors set),
paced against a daily budget.  Calibration constants come from Table 2;
the simulator reproduces impressions, clicks and cost with day-level
noise so totals land within a percent of the paper's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.data.countries import STUDY2_CAMPAIGNS, CampaignCalibration


@dataclass(frozen=True)
class DayOutcome:
    """One day of one campaign."""

    day: int
    impressions: int
    clicks: int
    cost_usd: float


@dataclass(frozen=True)
class CampaignOutcome:
    """Aggregated result of a campaign run."""

    name: str
    geo_target: str | None
    impressions: int
    clicks: int
    cost_usd: float
    days: tuple[DayOutcome, ...] = field(default_factory=tuple)

    @property
    def effective_cpm(self) -> float:
        return self.cost_usd / self.impressions * 1000.0 if self.impressions else 0.0


@dataclass(frozen=True)
class AdCampaign:
    """A campaign specification plus its calibrated market constants."""

    name: str
    daily_budget_usd: float
    days: int
    effective_cpm: float  # what the auction actually charges per 1000
    click_through_rate: float
    geo_target: str | None = None
    max_cpm_usd: float = 10.0
    # Observed mean spend/budget ratio (Table 2 campaigns over-deliver
    # slightly; Google bills up to 2x daily budget on busy days).
    spend_fraction_mean: float = 1.12
    # Study 1 varied its budget day by day; a schedule overrides
    # (daily_budget_usd, days).
    budget_schedule: tuple[float, ...] | None = None
    # Placement keywords (§4.1/§4.2) — trending phrases choosing which
    # pages show the ad.
    keywords: tuple[str, ...] = ()

    @classmethod
    def from_calibration(cls, calibration: CampaignCalibration) -> "AdCampaign":
        from repro.data.keywords import STUDY2_KEYWORDS

        return cls(
            name=calibration.name,
            daily_budget_usd=calibration.daily_budget_usd,
            days=calibration.days,
            effective_cpm=calibration.effective_cpm,
            click_through_rate=calibration.click_through_rate,
            geo_target=calibration.geo_target,
            keywords=STUDY2_KEYWORDS,
        )

    @classmethod
    def study1(cls) -> "AdCampaign":
        """The Jan 2014 campaign: 17 variable-budget days, then $500/day."""
        from repro.data.countries import STUDY1_CAMPAIGN
        from repro.data.keywords import STUDY1_KEYWORDS

        ramp = tuple(83.0 for _ in range(17)) + tuple(500.0 for _ in range(7))
        return cls(
            name=STUDY1_CAMPAIGN.name,
            daily_budget_usd=STUDY1_CAMPAIGN.daily_budget_usd,
            days=STUDY1_CAMPAIGN.days,
            effective_cpm=STUDY1_CAMPAIGN.effective_cpm,
            click_through_rate=STUDY1_CAMPAIGN.click_through_rate,
            geo_target=None,
            spend_fraction_mean=1.0,
            budget_schedule=ramp,
            keywords=STUDY1_KEYWORDS,
        )

    def run(self, rng: random.Random, scale: float = 1.0) -> CampaignOutcome:
        """Simulate the campaign day by day.

        Budget pacing: the platform spends close to the daily budget,
        with small day-to-day variation (traffic, competition).  The
        paper's own totals under-spend slightly (Table 2: Egypt spent
        $378 of $350... of a $50/day × 7 budget); we model spend as a
        noisy fraction of budget.
        """
        if not 0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        budgets = self.budget_schedule or tuple(
            self.daily_budget_usd for _ in range(self.days)
        )
        day_outcomes = []
        total_impressions = 0
        total_clicks = 0
        total_cost = 0.0
        for day, budget in enumerate(budgets):
            spend_fraction = max(0.5, rng.gauss(self.spend_fraction_mean, 0.04))
            cost = budget * spend_fraction * scale
            impressions = int(cost / self.effective_cpm * 1000.0)
            clicks = _binomial(rng, impressions, self.click_through_rate)
            day_outcomes.append(DayOutcome(day, impressions, clicks, cost))
            total_impressions += impressions
            total_clicks += clicks
            total_cost += cost
        return CampaignOutcome(
            name=self.name,
            geo_target=self.geo_target,
            impressions=total_impressions,
            clicks=total_clicks,
            cost_usd=round(total_cost, 2),
            days=tuple(day_outcomes),
        )


def _binomial(rng: random.Random, n: int, p: float) -> int:
    """Binomial sample; normal approximation above a size cutoff."""
    if n <= 0 or p <= 0:
        return 0
    if p >= 1:
        return n
    if n < 50:
        return sum(1 for _ in range(n) if rng.random() < p)
    mean = n * p
    std = (n * p * (1 - p)) ** 0.5
    return max(0, min(n, round(rng.gauss(mean, std))))


def run_study2_campaigns(
    rng: random.Random, scale: float = 1.0
) -> list[CampaignOutcome]:
    """Run all six study-2 campaigns (Table 2's rows)."""
    return [
        AdCampaign.from_calibration(calibration).run(rng, scale)
        for calibration in STUDY2_CAMPAIGNS
    ]
