"""Report-database persistence (JSON Lines).

The paper promised its collected datasets for download; this module
gives the reproduction the same property.  The format is line-oriented
JSON: one header line, one line per mismatch record, one line per
matched-counter cell, one line of failure counters — diffable,
greppable, and stable across versions of this library.
"""

from __future__ import annotations

import json
import pathlib

from repro.measure.database import ReportDatabase
from repro.measure.records import CertSummary, MeasurementRecord

_FORMAT_VERSION = 1


def summary_to_dict(summary: CertSummary) -> dict:
    return {
        "subject_cn": summary.subject_cn,
        "subject_org": summary.subject_org,
        "issuer_cn": summary.issuer_cn,
        "issuer_org": summary.issuer_org,
        "issuer_ou": summary.issuer_ou,
        "serial_number": summary.serial_number,
        "key_bits": summary.key_bits,
        "signature_algorithm": summary.signature_algorithm,
        "fingerprint": summary.fingerprint,
        "public_key_fingerprint": summary.public_key_fingerprint,
        "dns_names": list(summary.dns_names),
        "is_ca": summary.is_ca,
    }


def summary_from_dict(data: dict) -> CertSummary:
    return CertSummary(
        subject_cn=data["subject_cn"],
        subject_org=data["subject_org"],
        issuer_cn=data["issuer_cn"],
        issuer_org=data["issuer_org"],
        issuer_ou=data["issuer_ou"],
        serial_number=data["serial_number"],
        key_bits=data["key_bits"],
        signature_algorithm=data["signature_algorithm"],
        fingerprint=data["fingerprint"],
        public_key_fingerprint=data["public_key_fingerprint"],
        dns_names=tuple(data["dns_names"]),
        is_ca=data["is_ca"],
    )


def record_to_dict(record: MeasurementRecord) -> dict:
    return {
        "study": record.study,
        "campaign": record.campaign,
        "client_ip": record.client_ip,
        "country": record.country,
        "hostname": record.hostname,
        "host_type": record.host_type,
        "mismatch": record.mismatch,
        "leaf": summary_to_dict(record.leaf),
        "chain": [summary_to_dict(c) for c in record.chain],
        "chain_valid": record.chain_valid,
        "via": record.via,
        "product_key": record.product_key,
    }


def record_from_dict(data: dict) -> MeasurementRecord:
    return MeasurementRecord(
        study=data["study"],
        campaign=data["campaign"],
        client_ip=data["client_ip"],
        country=data["country"],
        hostname=data["hostname"],
        host_type=data["host_type"],
        mismatch=data["mismatch"],
        leaf=summary_from_dict(data["leaf"]),
        chain=tuple(summary_from_dict(c) for c in data["chain"]),
        chain_valid=data["chain_valid"],
        via=data["via"],
        product_key=data.get("product_key"),
    )


def save_database(database: ReportDatabase, path: str | pathlib.Path) -> None:
    """Write the database as JSON Lines."""
    path = pathlib.Path(path)
    with path.open("w", encoding="utf-8") as handle:
        header = {
            "type": "header",
            "version": _FORMAT_VERSION,
            "mismatch_count": database.mismatch_count,
            "matched_count": database.matched_count,
        }
        handle.write(json.dumps(header) + "\n")
        for record in database.records:
            handle.write(
                json.dumps({"type": "mismatch", **record_to_dict(record)}) + "\n"
            )
        for (country, host_type, hostname), count in sorted(
            database.matched_counts.items()
        ):
            handle.write(
                json.dumps(
                    {
                        "type": "matched",
                        "country": country,
                        "host_type": host_type,
                        "hostname": hostname,
                        "count": count,
                    }
                )
                + "\n"
            )
        handle.write(
            json.dumps({"type": "failures", **vars(database.failures)}) + "\n"
        )


def load_database(path: str | pathlib.Path) -> ReportDatabase:
    """Read a database written by :func:`save_database`."""
    path = pathlib.Path(path)
    database = ReportDatabase()
    header_seen = False
    expected: dict | None = None
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: bad JSON: {exc}") from exc
            kind = data.get("type")
            if kind == "header":
                if data.get("version") != _FORMAT_VERSION:
                    raise ValueError(
                        f"unsupported format version {data.get('version')}"
                    )
                header_seen = True
                expected = data
            elif kind == "mismatch":
                database.add_mismatch(record_from_dict(data))
            elif kind == "matched":
                database.add_matched_bulk(
                    data["country"], data["host_type"], data["hostname"], data["count"]
                )
            elif kind == "failures":
                for name in vars(database.failures):
                    setattr(database.failures, name, data.get(name, 0))
            else:
                raise ValueError(f"{path}:{line_number}: unknown row type {kind!r}")
    if not header_seen:
        raise ValueError(f"{path}: missing header line")
    if expected is not None:
        if database.mismatch_count != expected["mismatch_count"]:
            raise ValueError(
                f"{path}: mismatch count {database.mismatch_count} != "
                f"header {expected['mismatch_count']}"
            )
        if database.matched_count != expected["matched_count"]:
            raise ValueError(
                f"{path}: matched count {database.matched_count} != "
                f"header {expected['matched_count']}"
            )
    return database
