"""Measurement records and certificate summaries.

A :class:`CertSummary` captures exactly the certificate fields the
paper's analysis reads — issuer identification strings, key size,
signature algorithm, subject/SAN, fingerprints — so the analysis layer
never needs to re-parse DER.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.x509.model import Certificate


@dataclass(frozen=True)
class CertSummary:
    """The analysis-relevant fields of one certificate."""

    subject_cn: str | None
    subject_org: str | None
    issuer_cn: str | None
    issuer_org: str | None
    issuer_ou: str | None
    serial_number: int
    key_bits: int
    signature_algorithm: str  # e.g. "sha1WithRSAEncryption"
    fingerprint: str  # SHA-256 of the DER
    public_key_fingerprint: str  # SHA-256 of (n, e) — key-sharing signal
    dns_names: tuple[str, ...] = ()
    is_ca: bool = False

    @classmethod
    def from_certificate(cls, certificate: Certificate) -> "CertSummary":
        spki = certificate.tbs.public_key
        key_material = f"{spki.n}:{spki.e}".encode("ascii")
        return cls(
            subject_cn=certificate.subject.common_name,
            subject_org=certificate.subject.organization,
            issuer_cn=certificate.issuer.common_name,
            issuer_org=certificate.issuer.organization,
            issuer_ou=certificate.issuer.organizational_unit,
            serial_number=certificate.serial_number,
            key_bits=certificate.public_key_bits,
            signature_algorithm=certificate.signature_algorithm,
            fingerprint=certificate.fingerprint(),
            public_key_fingerprint=hashlib.sha256(key_material).hexdigest(),
            dns_names=tuple(certificate.dns_names),
            is_ca=certificate.is_ca,
        )

    def matches_hostname(self, hostname: str) -> bool:
        """RFC 6125-lite matching over recorded SAN/CN."""
        from repro.x509.model import _hostname_matches

        names = self.dns_names or ((self.subject_cn,) if self.subject_cn else ())
        return any(_hostname_matches(name, hostname) for name in names)


@dataclass(frozen=True)
class MeasurementRecord:
    """One completed certificate test.

    ``product_key`` is simulation ground truth (which product actually
    intercepted).  The analysis pipeline never reads it; validation
    tests use it to check that the classifier recovers the truth from
    certificate fields alone.
    """

    study: int
    campaign: str
    client_ip: str
    country: str | None  # geolocated at ingest (the MaxMind step)
    hostname: str
    host_type: str
    mismatch: bool
    leaf: CertSummary
    chain: tuple[CertSummary, ...] = ()
    # Whether the presented chain validates back to the *public* web
    # PKI roots (substitute chains validate only to the proxy's own CA,
    # so this is False for proxied connections — which is what exposes
    # falsified CA claims, §5.2).
    chain_valid: bool = False
    via: str = "wire"  # "wire" or "fast"
    product_key: str | None = field(default=None, compare=False)

    @property
    def chain_length(self) -> int:
        return 1 + len(self.chain)
