"""The measurement tool and reporting pipeline.

Mirrors §3 of the paper end to end:

* :class:`MeasurementTool` — the "Flash app": checks the socket policy
  file, runs the partial-handshake probe against each target, and POSTs
  the received PEM chain to the reporting server.  It enforces the
  same constraint the Flash runtime did: no policy file, no socket.
* :class:`ReportingServer` — receives reports, geolocates the client
  IP (the MaxMind step), compares the reported chain against the
  authoritative one, and stores the result.
* :class:`ReportDatabase` — the analysis substrate: detailed records
  for every mismatch, aggregate counters for matched traffic (at
  paper scale, 99.6 % of measurements are matched and boring).
* :class:`ReportStore` — the paper-scale sibling: an append-only
  segmented on-disk store with streaming aggregation
  (:class:`StreamingAggregator`), batched writes and back-pressure,
  driven concurrently by :class:`IngestLoop`.
"""

from repro.measure.database import ReportDatabase
from repro.measure.ingest import IngestLoop, ReportSubmission
from repro.measure.records import CertSummary, MeasurementRecord
from repro.measure.server import CombinedPolicyHttpServer, ReportingServer
from repro.measure.store import (
    ReportStore,
    StreamingAggregator,
    iter_store_mismatches,
    load_store,
    scan_store,
)
from repro.measure.tool import MeasurementTool, SessionOutcome

__all__ = [
    "CertSummary",
    "CombinedPolicyHttpServer",
    "IngestLoop",
    "MeasurementRecord",
    "MeasurementTool",
    "ReportDatabase",
    "ReportStore",
    "ReportSubmission",
    "ReportingServer",
    "SessionOutcome",
    "StreamingAggregator",
    "iter_store_mismatches",
    "load_store",
    "scan_store",
]
