"""Append-only segmented on-disk report store with streaming aggregation.

The paper's collection phase banked 12.3M reports; holding that many
records in a Python process is exactly the wrong shape.  This module
splits ingest into two cooperating halves:

* :class:`SegmentedStore` — the disk format.  One directory per
  country shard, append-only JSONL segments inside it.  The active
  segment is written as ``seg-NNNNNN.open.jsonl`` and atomically
  renamed (sealed) once it crosses the spill threshold, so readers
  only ever see either a sealed immutable segment or a clearly-marked
  active one.  A torn tail — the half-written line a crash leaves
  behind — is detected on scan and healed by truncating to the last
  complete row, counted under ``reports.rejected{reason=torn-segment}``.
* :class:`StreamingAggregator` — the query surface of
  :class:`~repro.measure.database.ReportDatabase` (Tables 3/7
  breakdowns, failure ledger, distinct proxied IPs,
  ``aggregate_signature``) computed incrementally at ingest time.  It
  keeps counters and mismatch *signature keys*, never records, so its
  memory is bounded by the key universe rather than the report volume
  — and its signature is byte-identical to the in-memory database's
  for the same report stream.

:class:`ReportStore` glues them together and adds the throughput
story: appends land in a bounded write buffer, matched increments are
coalesced per (host type, hostname) cell, and one batched ``write()``
per shard flushes the lot (``reports.batches``).  When flushing is
deferred (the ingest loop batches across connections) and the pending
buffer crosses ``max_pending``, the store reports itself overloaded —
the reporting server then answers 429 and the event is counted under
``store.backpressure_events``.

Row kinds, one JSON object per line:

``{"t": "m", "r": {...}}``
    one mismatch record, full fidelity (persist.py's record dict);
``{"t": "c", "ht": ..., "h": ..., "n": N}``
    N matched measurements for (shard country, host type, hostname);
``{"t": "f", "k": ..., "n": N}``
    a failure-ledger increment (lives in the ``_meta`` shard);
``{"t": "seal", "compacts": [...]}``
    compaction header: this segment replaces the named ones.  Readers
    skip replaced segments that a crash between rename and unlink left
    behind, so compaction never double-counts.
"""

from __future__ import annotations

import json
import os
import pathlib
from collections import Counter
from typing import Callable, Iterator

from repro.measure.database import (
    FailureCounters,
    ReportDatabase,
    combine_signature,
    record_signature_key,
)
from repro.measure.persist import record_from_dict, record_to_dict
from repro.measure.records import MeasurementRecord
from repro.obs.metrics import INGEST_BATCH_BUCKETS, MetricsRegistry


class StoreError(Exception):
    """Raised on a malformed or inconsistent store directory."""


class InjectedCrash(RuntimeError):
    """A crash hook killed the writer at a named crash point.

    Raised *by* a crash hook (see ``ReportStore.crash_hook``) and
    re-raised by the store after it has simulated process death:
    pending appends are gone, the active segments are abandoned
    (optionally with a torn half-row), and the instance refuses further
    appends.  Recovery is a fresh :class:`ReportStore` on the same
    directory plus a replay of the operations ``ops_durable`` did not
    cover — :class:`repro.faults.recovery.ResilientStoreWriter` is that
    loop.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at store point {point!r}")
        self.point = point


_META_SHARD = "_meta"
_SEGMENT_PREFIX = "seg-"
_OPEN_SUFFIX = ".open.jsonl"
_SEALED_SUFFIX = ".jsonl"


def _shard_name(country: str) -> str:
    """Filesystem-safe shard directory name for a country code.

    Non-alphanumeric characters are percent-quoted, so ``"??"`` (the
    unknown-country bucket) gets a well-defined directory and can never
    collide with the reserved ``_meta`` shard.
    """
    return "".join(c if c.isalnum() else f"%{ord(c):02X}" for c in country) or "%00"


def _shard_country(name: str) -> str:
    out = []
    i = 0
    while i < len(name):
        if name[i] == "%" and i + 2 < len(name):
            out.append(chr(int(name[i + 1 : i + 3], 16)))
            i += 3
        else:
            out.append(name[i])
            i += 1
    return "".join(out)


def _segment_index(name: str) -> int:
    stem = name[len(_SEGMENT_PREFIX) :]
    return int(stem.split(".", 1)[0])


def _mismatch_signature_key(country: str, payload: dict) -> tuple:
    """``record_signature_key`` computed from a row dict, not a record."""
    return (
        country,
        payload["hostname"],
        payload["client_ip"],
        payload["campaign"],
        payload["leaf"]["fingerprint"],
        payload["leaf"]["serial_number"],
        tuple(c["fingerprint"] for c in payload["chain"]),
    )


class StreamingAggregator:
    """Tables 3/7 and the aggregate signature, without the records.

    Mirrors the :class:`ReportDatabase` query surface the analysis
    breakdowns read, so ``country_breakdown``/``host_type_table`` work
    on either; ``aggregate_signature()`` uses the shared
    :func:`combine_signature` and therefore matches the in-memory
    database byte for byte for the same report stream.
    """

    def __init__(self) -> None:
        self.matched_counts: Counter[tuple[str, str, str]] = Counter()
        self.mismatch_keys: list[tuple] = []
        self.failures = FailureCounters()
        self._country_totals: dict[str, list[int]] = {}
        self._host_type_totals: dict[str, list[int]] = {}
        self._proxied_ips: set[str] = set()

    # -- ingest ----------------------------------------------------------

    def observe_matched(
        self, country: str, host_type: str, hostname: str, count: int
    ) -> None:
        if count:
            self.matched_counts[(country, host_type, hostname)] += count
            self._country_totals.setdefault(country, [0, 0])[1] += count
            self._host_type_totals.setdefault(host_type, [0, 0])[1] += count

    def observe_mismatch_record(self, record: MeasurementRecord) -> None:
        self._observe_mismatch(
            record.country or "??",
            record.host_type,
            record.client_ip,
            record_signature_key(record),
        )

    def observe_mismatch_row(self, country: str, payload: dict) -> None:
        self._observe_mismatch(
            country,
            payload["host_type"],
            payload["client_ip"],
            _mismatch_signature_key(country, payload),
        )

    def _observe_mismatch(
        self, country: str, host_type: str, client_ip: str, key: tuple
    ) -> None:
        self.mismatch_keys.append(key)
        entry = self._country_totals.setdefault(country, [0, 0])
        entry[0] += 1
        entry[1] += 1
        entry = self._host_type_totals.setdefault(host_type, [0, 0])
        entry[0] += 1
        entry[1] += 1
        self._proxied_ips.add(client_ip)

    def observe_failure(self, name: str, count: int = 1) -> None:
        setattr(self.failures, name, getattr(self.failures, name) + count)

    # -- the ReportDatabase query surface --------------------------------

    @property
    def mismatch_count(self) -> int:
        return len(self.mismatch_keys)

    @property
    def matched_count(self) -> int:
        return sum(self.matched_counts.values())

    @property
    def total_measurements(self) -> int:
        return self.matched_count + self.mismatch_count

    @property
    def proxied_rate(self) -> float:
        total = self.total_measurements
        return self.mismatch_count / total if total else 0.0

    def totals_by_country(self) -> dict[str, tuple[int, int]]:
        return {
            country: (proxied, total)
            for country, (proxied, total) in sorted(self._country_totals.items())
        }

    def totals_by_host_type(self) -> dict[str, tuple[int, int]]:
        return {
            host_type: (proxied, total)
            for host_type, (proxied, total) in sorted(
                self._host_type_totals.items()
            )
        }

    def distinct_proxied_ips(self) -> int:
        return len(self._proxied_ips)

    def aggregate_signature(self) -> str:
        return combine_signature(
            self.matched_counts, self.mismatch_keys, self.failures
        )


class _Shard:
    """Write-side state for one shard directory."""

    __slots__ = (
        "path",
        "handle",
        "active_name",
        "active_bytes",
        "next_index",
        "pending_lines",
        "pending_matched",
    )

    def __init__(self, path: pathlib.Path) -> None:
        self.path = path
        self.handle = None
        self.active_name: str | None = None
        self.active_bytes = 0
        self.next_index = 1
        self.pending_lines: list[bytes] = []
        self.pending_matched: Counter[tuple[str, str]] = Counter()


class SegmentedStore:
    """The disk format: per-country directories of JSONL segments."""

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self._shards: dict[str, _Shard] = {}

    # -- write side ------------------------------------------------------

    def shard(self, name: str) -> _Shard:
        shard = self._shards.get(name)
        if shard is None:
            shard = _Shard(self.path / name)
            existing = self._segment_names(shard.path)
            if existing:
                shard.next_index = max(_segment_index(n) for n in existing) + 1
            self._shards[name] = shard
        return shard

    def write_blob(self, shard: _Shard, blob: bytes, segment_bytes: int) -> int:
        """Append ``blob`` to the shard's active segment.

        Returns the number of segments sealed (0 or 1): once the
        active segment crosses ``segment_bytes`` it is sealed — flushed
        and atomically renamed from ``.open.jsonl`` to ``.jsonl``.
        """
        if shard.handle is None:
            shard.path.mkdir(parents=True, exist_ok=True)
            shard.active_name = f"{_SEGMENT_PREFIX}{shard.next_index:06d}"
            shard.next_index += 1
            shard.handle = open(shard.path / (shard.active_name + _OPEN_SUFFIX), "ab")
            shard.active_bytes = 0
        shard.handle.write(blob)
        shard.active_bytes += len(blob)
        if shard.active_bytes >= segment_bytes:
            self.seal(shard)
            return 1
        return 0

    def seal(self, shard: _Shard) -> None:
        """Atomically promote the active segment to a sealed one."""
        if shard.handle is None:
            return
        shard.handle.flush()
        shard.handle.close()
        open_path = shard.path / (shard.active_name + _OPEN_SUFFIX)
        os.replace(open_path, shard.path / (shard.active_name + _SEALED_SUFFIX))
        shard.handle = None
        shard.active_name = None
        shard.active_bytes = 0

    def seal_all(self) -> int:
        sealed = 0
        for shard in self._shards.values():
            if shard.handle is not None:
                self.seal(shard)
                sealed += 1
        return sealed

    # -- read side -------------------------------------------------------

    @staticmethod
    def _segment_names(shard_path: pathlib.Path) -> list[str]:
        if not shard_path.is_dir():
            return []
        return sorted(
            name
            for name in os.listdir(shard_path)
            if name.startswith(_SEGMENT_PREFIX)
        )

    def shard_names(self) -> list[str]:
        return sorted(
            name for name in os.listdir(self.path) if (self.path / name).is_dir()
        )

    @staticmethod
    def _first_row(path: pathlib.Path) -> dict | None:
        with open(path, "rb") as handle:
            raw = handle.readline()
        if not raw.endswith(b"\n"):
            return None
        try:
            return json.loads(raw)
        except json.JSONDecodeError:
            return None

    @staticmethod
    def _iter_segment(
        path: pathlib.Path,
        on_torn: Callable[[pathlib.Path], None] | None = None,
        heal: bool = False,
    ) -> Iterator[dict]:
        """Stream one segment's rows, stopping at (and optionally
        healing) a torn tail.  ``seal`` header rows are not yielded."""
        offset = 0
        torn_at = None
        with open(path, "rb") as handle:
            for raw in handle:
                if not raw.endswith(b"\n"):
                    torn_at = offset
                    break
                stripped = raw.strip()
                if stripped:
                    try:
                        row = json.loads(stripped)
                    except json.JSONDecodeError:
                        torn_at = offset
                        break
                    if row.get("t") != "seal":
                        yield row
                offset += len(raw)
        if torn_at is not None:
            if on_torn is not None:
                on_torn(path)
            if heal:
                os.truncate(path, torn_at)

    def iter_shard_rows(
        self,
        name: str,
        on_torn: Callable[[pathlib.Path], None] | None = None,
        heal: bool = False,
    ) -> Iterator[dict]:
        """Yield every row of one shard in (segment, line) order.

        Detects torn tails (trailing bytes with no newline, or an
        undecodable line): the torn tail and everything after it in
        that segment is dropped, ``on_torn`` is called once per torn
        segment, and with ``heal=True`` the file is truncated back to
        its last complete row.  Segments replaced by a compaction
        header are skipped entirely, so a crash between a compaction's
        rename and its unlinks never double-counts.
        """
        shard_path = self.path / name
        segments = self._segment_names(shard_path)
        replaced: set[str] = set()
        for segment in segments:
            header = self._first_row(shard_path / segment)
            if header is not None and header.get("t") == "seal":
                replaced.update(header.get("compacts", []))
        for segment in segments:
            if segment in replaced:
                continue
            yield from self._iter_segment(shard_path / segment, on_torn, heal)

    def segment_paths(self) -> list[pathlib.Path]:
        return [
            self.path / name / segment
            for name in self.shard_names()
            for segment in self._segment_names(self.path / name)
        ]


class ReportStore:
    """Batched, metric-instrumented ingest into a :class:`SegmentedStore`.

    Appends are buffered per shard — mismatches as encoded lines,
    matched measurements coalesced into per-(host type, hostname)
    counters — and written with one ``write()`` per shard per flush.
    A :class:`StreamingAggregator` shadows every append, so Tables 3/7
    and the aggregate signature are available the moment ingest stops,
    without reading anything back.

    ``auto_flush`` (the default) flushes whenever ``batch_rows``
    reports are pending.  The ingest front end instead defers flushing
    to batch across connections; if the pending buffer then reaches
    ``max_pending`` the store is *overloaded* — the reporting server
    answers 429 until someone flushes, and every deferral is counted
    under ``store.backpressure_events``.

    **Crash points.**  ``crash_hook(point)`` — when given — is invoked
    at four named points: ``"flush"`` (entry of a non-empty flush,
    before any byte is written), ``"rotate"`` (a flush that would seal
    a segment, still before any write), ``"seal"`` (in ``close()``,
    after the final flush, before the active segments are renamed) and
    ``"compact"`` (after a compacted segment is in place, before its
    replaced segments are unlinked).  A hook that raises
    :class:`InjectedCrash` kills this writer the way SIGKILL would:
    pending rows are dropped, the active segment keeps at most a torn
    half-row (``crash_tear``), and the exception propagates.  Because
    every point fires *before* the cycle's writes, disk state after a
    crash is exactly the state of the last successful flush —
    ``ops_durable`` counts the appends that state covers, which is
    what makes exact replay possible.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        registry: MetricsRegistry | None = None,
        *,
        batch_rows: int = 4096,
        max_pending: int | None = None,
        segment_bytes: int = 8 * 1024 * 1024,
        auto_flush: bool = True,
        crash_hook: Callable[[str], None] | None = None,
        crash_tear: bool = True,
    ) -> None:
        if batch_rows < 1:
            raise ValueError("batch_rows must be >= 1")
        self.segments = SegmentedStore(path)
        self.aggregator = StreamingAggregator()
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.batch_rows = batch_rows
        self.max_pending = max_pending if max_pending is not None else 4 * batch_rows
        self.segment_bytes = segment_bytes
        self.auto_flush = auto_flush
        self.crash_hook = crash_hook
        self.crash_tear = crash_tear
        self._pending = 0
        self._closed = False
        # Append-operation accounting for crash recovery: ops_appended
        # counts every add_* call accepted by this instance,
        # ops_durable the prefix of those covered by a completed flush.
        self.ops_appended = 0
        self.ops_durable = 0
        # How many active segments the last simulated crash left torn.
        self.crash_torn_segments = 0
        self._c_batches = self.metrics.counter("reports.batches")
        self._c_segments = self.metrics.counter("store.segments_written")
        self._c_bytes = self.metrics.counter("store.bytes_written")
        self._c_backpressure = self.metrics.counter("store.backpressure_events")
        self._h_batch = self.metrics.histogram("store.batch_rows", INGEST_BATCH_BUCKETS)
        # Heal whatever a previous (possibly crashed) writer left
        # behind: torn tails truncated and counted, leftover .open
        # segments sealed so indices never collide.
        self.recover()

    @property
    def path(self) -> pathlib.Path:
        return self.segments.path

    # -- ingest ----------------------------------------------------------

    @property
    def pending(self) -> int:
        return self._pending

    @property
    def overloaded(self) -> bool:
        return self._pending >= self.max_pending

    def defer(self) -> None:
        """Record one deferred-accept (429) caused by back-pressure."""
        self._c_backpressure.inc()

    def add_mismatch(self, record: MeasurementRecord) -> None:
        if not record.mismatch:
            raise ValueError("add_mismatch() requires a mismatch record")
        country = record.country or "??"
        line = json.dumps(
            {"t": "m", "r": record_to_dict(record)}, separators=(",", ":")
        ).encode("utf-8")
        self.segments.shard(_shard_name(country)).pending_lines.append(line)
        self.aggregator.observe_mismatch_record(record)
        self._appended()

    def add_matched(self, record: MeasurementRecord) -> None:
        if record.mismatch:
            raise ValueError("add_matched() requires a non-mismatch record")
        self.add_matched_bulk(
            record.country or "??", record.host_type, record.hostname, 1
        )

    def add_matched_bulk(
        self, country: str, host_type: str, hostname: str, count: int
    ) -> None:
        if count < 0:
            raise ValueError("negative bulk count")
        if not count:
            return
        shard = self.segments.shard(_shard_name(country))
        shard.pending_matched[(host_type, hostname)] += count
        self.aggregator.observe_matched(country, host_type, hostname, count)
        self._appended()

    def add_failure(self, name: str, count: int = 1) -> None:
        if not count:
            return
        if not hasattr(self.aggregator.failures, name):
            raise ValueError(f"unknown failure counter {name!r}")
        self.aggregator.observe_failure(name, count)
        line = json.dumps(
            {"t": "f", "k": name, "n": count}, separators=(",", ":")
        ).encode("utf-8")
        self.segments.shard(_META_SHARD).pending_lines.append(line)
        self._appended()

    def append_database(self, database: ReportDatabase) -> None:
        """Stream one shard database's contents into the store.

        The fast-mode study path: worker outcomes are appended here in
        fixed plan order instead of being merged into a parent
        in-memory database.
        """
        for record in database.records:
            self.add_mismatch(record)
        for (country, host_type, hostname), count in database.matched_counts.items():
            self.add_matched_bulk(country, host_type, hostname, count)
        for name, value in vars(database.failures).items():
            if value:
                self.add_failure(name, value)

    def _appended(self) -> None:
        if self._closed:
            raise StoreError("append on a closed store")
        self._pending += 1
        self.ops_appended += 1
        if self.auto_flush and self._pending >= self.batch_rows:
            self.flush()

    # -- crash simulation ------------------------------------------------

    def _crash_point(self, point: str) -> None:
        if self.crash_hook is None:
            return
        try:
            self.crash_hook(point)
        except InjectedCrash:
            self._die()
            raise

    def _die(self) -> None:
        """Simulate process death mid-cycle.

        Pending (unflushed) rows vanish, every open segment handle is
        abandoned — with ``crash_tear`` each first gets a half-written
        row appended, the artefact a real SIGKILL mid-``write`` leaves
        — and the instance closes.  Durable state on disk is exactly
        the last successful flush; ``recover()`` on the next instance
        heals the torn tails and counts them under
        ``reports.rejected{reason=torn-segment}``.
        """
        torn = 0
        for shard in self.segments._shards.values():
            handle = shard.handle
            if handle is not None:
                if self.crash_tear:
                    handle.write(b'{"t":"m","r":{"torn')
                    torn += 1
                try:
                    handle.flush()
                    handle.close()
                except OSError:
                    pass
                shard.handle = None
                shard.active_name = None
                shard.active_bytes = 0
            shard.pending_lines = []
            shard.pending_matched = Counter()
        self._pending = 0
        self.crash_torn_segments = torn
        self._closed = True

    # -- flushing --------------------------------------------------------

    def flush(self) -> None:
        """Write every pending row in one batched append per shard."""
        if not self._pending:
            return
        with self.metrics.span("ingest.flush"):
            self._crash_point("flush")
            # Build every shard's blob before writing any of them, so
            # the rotate crash point can fire while disk state is still
            # exactly the previous flush's.
            blobs: list[tuple[_Shard, bytes]] = []
            would_seal = False
            for shard in self.segments._shards.values():
                if not shard.pending_lines and not shard.pending_matched:
                    continue
                lines = shard.pending_lines
                for (host_type, hostname), count in shard.pending_matched.items():
                    lines.append(
                        json.dumps(
                            {"t": "c", "ht": host_type, "h": hostname, "n": count},
                            separators=(",", ":"),
                        ).encode("utf-8")
                    )
                blob = b"\n".join(lines) + b"\n"
                blobs.append((shard, blob))
                active = shard.active_bytes if shard.handle is not None else 0
                if active + len(blob) >= self.segment_bytes:
                    would_seal = True
            if would_seal:
                self._crash_point("rotate")
            for shard, blob in blobs:
                sealed = self.segments.write_blob(shard, blob, self.segment_bytes)
                if shard.handle is not None:
                    # Flushed rows must survive a process crash: drain
                    # the userspace buffer to the OS now, so at most
                    # the post-flush tail can ever be torn.
                    shard.handle.flush()
                self._c_bytes.inc(len(blob))
                if sealed:
                    self._c_segments.inc(sealed)
                shard.pending_lines = []
                shard.pending_matched = Counter()
            self._c_batches.inc()
            self._h_batch.observe(self._pending)
            self._pending = 0
            self.ops_durable = self.ops_appended

    def close(self) -> None:
        """Flush and seal every active segment."""
        if self._closed:
            return
        self.flush()
        self._crash_point("seal")
        sealed = self.segments.seal_all()
        if sealed:
            self._c_segments.inc(sealed)
        self._closed = True

    # -- maintenance -----------------------------------------------------

    def recover(self) -> dict:
        """Heal and seal ``.open`` segments left by a dead writer.

        Crash-truncation recovery: a torn tail is truncated away (only
        the half-written row is lost) and counted under
        ``reports.rejected{reason=torn-segment}``, then the segment is
        sealed so the next writer never collides with it.  Sealed
        segments are immutable once renamed, so they are not rescanned
        here; external damage to them is caught by
        :func:`scan_store`/:func:`load_store`.
        """
        torn = 0
        sealed = 0
        for name in self.segments.shard_names():
            shard_path = self.segments.path / name
            for segment in self.segments._segment_names(shard_path):
                if not segment.endswith(_OPEN_SUFFIX):
                    continue
                path = shard_path / segment
                torn_paths: list[pathlib.Path] = []
                for _row in self.segments._iter_segment(
                    path, on_torn=torn_paths.append, heal=True
                ):
                    pass
                if torn_paths:
                    torn += 1
                    self.metrics.inc("reports.rejected", reason="torn-segment")
                os.replace(
                    path, shard_path / segment.replace(_OPEN_SUFFIX, _SEALED_SUFFIX)
                )
                sealed += 1
        return {"torn_segments": torn, "sealed_open_segments": sealed}

    def compact(self) -> dict:
        """Rewrite each shard as one segment with coalesced counters.

        Matched-counter rows collapse to one per (host type, hostname),
        failure rows to one per counter; mismatch rows are preserved in
        order.  The compacted segment carries a ``seal`` header naming
        the segments it replaces, which readers skip if a crash leaves
        them behind — so compaction is crash-safe in both directions.
        """
        self.flush()
        sealed = self.segments.seal_all()
        if sealed:
            self._c_segments.inc(sealed)
        rows_before = 0
        rows_after = 0
        with self.metrics.span("ingest.compact"):
            for name in self.segments.shard_names():
                shard_path = self.segments.path / name
                segments = self.segments._segment_names(shard_path)
                if not segments:
                    continue
                if len(segments) == 1:
                    # A single sealed segment opening with a seal header
                    # is a finished compaction; rewriting it would make
                    # re-running compact() after a crash a treadmill
                    # instead of a converging recovery.
                    with open(shard_path / segments[0], "rb") as handle:
                        if handle.read(12).startswith(b'{"t":"seal"'):
                            continue
                counters: Counter[tuple[str, str]] = Counter()
                failures: Counter[str] = Counter()
                mismatch_lines: list[bytes] = []
                for row in self.segments.iter_shard_rows(name):
                    rows_before += 1
                    kind = row.get("t")
                    if kind == "c":
                        counters[(row["ht"], row["h"])] += row["n"]
                    elif kind == "f":
                        failures[row["k"]] += row["n"]
                    elif kind == "m":
                        mismatch_lines.append(
                            json.dumps(row, separators=(",", ":")).encode("utf-8")
                        )
                    else:
                        raise StoreError(f"unknown row type {kind!r}")
                shard = self.segments.shard(name)
                index = shard.next_index
                shard.next_index += 1
                lines = [
                    json.dumps(
                        {"t": "seal", "compacts": sorted(segments)},
                        separators=(",", ":"),
                    ).encode("utf-8")
                ]
                lines.extend(mismatch_lines)
                for (host_type, hostname), count in sorted(counters.items()):
                    lines.append(
                        json.dumps(
                            {"t": "c", "ht": host_type, "h": hostname, "n": count},
                            separators=(",", ":"),
                        ).encode("utf-8")
                    )
                for key, count in sorted(failures.items()):
                    lines.append(
                        json.dumps(
                            {"t": "f", "k": key, "n": count}, separators=(",", ":")
                        ).encode("utf-8")
                    )
                rows_after += len(lines) - 1
                tmp = shard_path / f"compact-{index:06d}.tmp"
                final = shard_path / f"{_SEGMENT_PREFIX}{index:06d}{_SEALED_SUFFIX}"
                with open(tmp, "wb") as handle:
                    handle.write(b"\n".join(lines) + b"\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, final)
                # Crash window the seal header exists for: the
                # compacted segment is live but the segments it
                # replaces are still on disk.  Readers skip them; a
                # re-run of compact() after reopen finishes the job.
                self._crash_point("compact")
                for segment in segments:
                    os.unlink(shard_path / segment)
                self._c_segments.inc()
        return {"rows_before": rows_before, "rows_after": rows_after}


def scan_store(
    path: str | pathlib.Path,
    registry: MetricsRegistry | None = None,
    heal: bool = False,
) -> StreamingAggregator:
    """One streaming pass over every segment → a fresh aggregator.

    Torn segments are counted under
    ``reports.rejected{reason=torn-segment}`` (and truncated away with
    ``heal=True``); everything up to the torn tail still counts.  The
    result's ``aggregate_signature()`` equals the in-memory database's
    for the same report stream — the equality the ingest benchmark and
    CI smoke pin.
    """
    metrics = registry if registry is not None else MetricsRegistry()
    segments = SegmentedStore(path)
    aggregator = StreamingAggregator()
    torn = metrics.counter("reports.rejected", reason="torn-segment")
    with metrics.span("ingest.scan"):
        for name in segments.shard_names():
            country = _shard_country(name)
            for row in segments.iter_shard_rows(
                name, on_torn=lambda _path: torn.inc(), heal=heal
            ):
                kind = row.get("t")
                if kind == "c":
                    aggregator.observe_matched(country, row["ht"], row["h"], row["n"])
                elif kind == "m":
                    aggregator.observe_mismatch_row(country, row["r"])
                elif kind == "f":
                    aggregator.observe_failure(row["k"], row["n"])
                else:
                    raise StoreError(f"unknown row type {kind!r}")
    return aggregator


def iter_store_mismatches(path: str | pathlib.Path) -> Iterator[MeasurementRecord]:
    """Stream full mismatch records out of the segments (shard order)."""
    segments = SegmentedStore(path)
    for name in segments.shard_names():
        for row in segments.iter_shard_rows(name):
            if row.get("t") == "m":
                yield record_from_dict(row["r"])


def load_store(
    path: str | pathlib.Path,
    matched_sample_limit: int = 1000,
    registry: MetricsRegistry | None = None,
) -> ReportDatabase:
    """Materialise a full :class:`ReportDatabase` from the segments.

    The record-level analysis tables (issuer organizations,
    classification, negligence) read ``database.records``; this is the
    bridge from a streamed collection run back to them.  The rebuilt
    database's ``aggregate_signature()`` matches the aggregator's (the
    matched-sample reservoir is intentionally not persisted).
    """
    metrics = registry if registry is not None else MetricsRegistry()
    segments = SegmentedStore(path)
    database = ReportDatabase(matched_sample_limit=matched_sample_limit)
    torn = metrics.counter("reports.rejected", reason="torn-segment")
    for name in segments.shard_names():
        country = _shard_country(name)
        for row in segments.iter_shard_rows(name, on_torn=lambda _path: torn.inc()):
            kind = row.get("t")
            if kind == "c":
                database.add_matched_bulk(country, row["ht"], row["h"], row["n"])
            elif kind == "m":
                database.add_mismatch(record_from_dict(row["r"]))
            elif kind == "f":
                setattr(
                    database.failures,
                    row["k"],
                    getattr(database.failures, row["k"]) + row["n"],
                )
            else:
                raise StoreError(f"unknown row type {kind!r}")
    return database
