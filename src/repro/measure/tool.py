"""The client-side measurement tool (the "Flash app").

Follows §3.1's three steps for every probe target:

1. the embedding page delivers the tool (modelled by an HTTP GET),
2. the tool opens a raw socket — but only after the Flash runtime's
   socket-policy check passes for that host and port,
3. the received certificate chain is POSTed back in PEM.

The tool probes the authors' site first, then the remaining targets,
matching §4.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.sites import ProbeSite
from repro.httpmin.client import HttpClient
from repro.netsim.network import ConnectionRefused, ConnectionReset, Host
from repro.obs.metrics import MetricsRegistry
from repro.policy.model import PolicyError
from repro.policy.server import fetch_policy
from repro.tls.probe import ProbeClient
from repro.x509.pem import pem_encode


@dataclass
class SessionOutcome:
    """What one client session accomplished."""

    probes_attempted: int = 0
    reports_delivered: int = 0
    policy_denied: int = 0
    connect_failed: int = 0
    probe_failed: int = 0
    report_failed: int = 0
    errors: list[str] = field(default_factory=list)


class MeasurementTool:
    """Runs measurement sessions from client hosts (wire mode)."""

    def __init__(
        self,
        reporting_host: str = "tlsresearch.byu.edu",
        report_port: int = 80,
        policy_ports: tuple[int, ...] = (843, 80),
        sim_product_header: bool = True,
        registry: MetricsRegistry | None = None,
        report_retry_limit: int = 4,
    ) -> None:
        self.reporting_host = reporting_host
        self.report_port = report_port
        self.policy_ports = policy_ports
        self.sim_product_header = sim_product_header
        # How many 429 (ingest back-pressure) answers a client retries
        # through before giving the report up as failed.
        self.report_retry_limit = report_retry_limit
        # Shared with the per-session ProbeClients, so probe attempts
        # and failure stages aggregate across the whole run.
        self.metrics = registry if registry is not None else MetricsRegistry()

    def run_session(
        self,
        client: Host,
        sites: list[ProbeSite],
        product_key: str | None = None,
    ) -> SessionOutcome:
        """Fetch the tool, then probe and report every site."""
        outcome = SessionOutcome()
        http = HttpClient(client)
        try:
            http.get(self.reporting_host, "/ad", port=self.report_port)
        except (ConnectionRefused, ConnectionReset) as exc:
            outcome.errors.append(f"ad fetch: {exc}")
            return outcome
        for site in sites:
            self._probe_and_report(client, http, site, product_key, outcome)
        return outcome

    def _probe_and_report(
        self,
        client: Host,
        http: HttpClient,
        site: ProbeSite,
        product_key: str | None,
        outcome: SessionOutcome,
    ) -> None:
        outcome.probes_attempted += 1
        if not self._policy_permits(client, site.hostname, outcome):
            return
        result = ProbeClient(client, registry=self.metrics).probe(site.hostname, 443)
        if not result.ok:
            if result.error.startswith("connect"):
                outcome.connect_failed += 1
            else:
                outcome.probe_failed += 1
            outcome.errors.append(f"{site.hostname}: {result.error}")
            return
        body = "".join(pem_encode(der) for der in result.der_chain).encode("ascii")
        headers = {
            "X-Probed-Host": site.hostname,
            "Content-Type": "application/x-pem-file",
        }
        if self.sim_product_header and product_key:
            headers["X-Sim-Product"] = product_key
        try:
            for _attempt in range(1 + self.report_retry_limit):
                response = http.request(
                    "POST",
                    self.reporting_host,
                    "/report",
                    port=self.report_port,
                    body=body,
                    headers=headers,
                )
                if response.status != 429:
                    break
        except (ConnectionRefused, ConnectionReset) as exc:
            outcome.report_failed += 1
            outcome.errors.append(f"report: {exc}")
            return
        if response.ok:
            outcome.reports_delivered += 1
        else:
            outcome.report_failed += 1
            outcome.errors.append(
                f"report rejected ({response.status}): {response.body[:80]!r}"
            )

    def _policy_permits(self, client: Host, hostname: str, outcome: SessionOutcome) -> bool:
        """The Flash runtime's mandatory socket-policy check."""
        for port in self.policy_ports:
            try:
                policy = fetch_policy(client, hostname, port)
            except ConnectionRefused:
                continue
            except (PolicyError, ConnectionReset):
                outcome.policy_denied += 1
                return False
            if policy.permits("tlsresearch.byu.edu", 443):
                return True
            outcome.policy_denied += 1
            return False
        outcome.policy_denied += 1
        return False
