"""The client-side measurement tool (the "Flash app").

Follows §3.1's three steps for every probe target:

1. the embedding page delivers the tool (modelled by an HTTP GET),
2. the tool opens a raw socket — but only after the Flash runtime's
   socket-policy check passes for that host and port,
3. the received certificate chain is POSTed back in PEM.

The tool probes the authors' site first, then the remaining targets,
matching §4.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.sites import ProbeSite
from repro.faults.plan import Backoff, FaultPlan
from repro.httpmin.client import HttpClient
from repro.httpmin.codec import HttpError
from repro.netsim.events import drive
from repro.netsim.network import ConnectionRefused, ConnectionReset, Host
from repro.obs.metrics import MetricsRegistry
from repro.policy.model import PolicyError
from repro.policy.server import fetch_policy_task
from repro.tls.probe import ProbeClient
from repro.x509.pem import pem_encode


@dataclass
class SessionOutcome:
    """What one client session accomplished."""

    probes_attempted: int = 0
    reports_delivered: int = 0
    policy_denied: int = 0
    connect_failed: int = 0
    probe_failed: int = 0
    report_failed: int = 0
    report_retries: int = 0
    backoff_ticks: int = 0
    deadline_exhausted: int = 0
    errors: list[str] = field(default_factory=list)


class MeasurementTool:
    """Runs measurement sessions from client hosts (wire mode)."""

    def __init__(
        self,
        reporting_host: str = "tlsresearch.byu.edu",
        report_port: int = 80,
        policy_ports: tuple[int, ...] = (843, 80),
        sim_product_header: bool = True,
        registry: MetricsRegistry | None = None,
        report_retry_limit: int = 4,
        backoff: Backoff | None = None,
        session_deadline_ticks: int = 256,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.reporting_host = reporting_host
        self.report_port = report_port
        self.policy_ports = policy_ports
        self.sim_product_header = sim_product_header
        # How many retryable failures (429 back-pressure, transient
        # transport or 5xx) a client rides through before giving the
        # report up as failed.
        self.report_retry_limit = report_retry_limit
        # Deterministic jittered backoff between attempts, accounted in
        # cooperative ticks (nothing sleeps); a session that spends its
        # deadline budget waiting gives up instead of retrying forever.
        self.backoff = backoff if backoff is not None else Backoff(0)
        self.session_deadline_ticks = session_deadline_ticks
        # Seeded fault plan for client-side stall injections: under a
        # scheduler a stall is a real delay (the session holds its
        # admission slot while others run); driven serially it only
        # burns deadline budget.  Keyed on the planning-time session
        # ordinal, so injections are identical at any concurrency.
        self.fault_plan = fault_plan
        # Shared with the per-session ProbeClients, so probe attempts
        # and failure stages aggregate across the whole run.
        self.metrics = registry if registry is not None else MetricsRegistry()

    def run_session(
        self,
        client: Host,
        sites: list[ProbeSite],
        product_key: str | None = None,
        session_ordinal: int = 0,
    ) -> SessionOutcome:
        """Fetch the tool, then probe and report every site."""
        return drive(
            self.session_task(client, sites, product_key, session_ordinal)
        )

    def session_task(
        self,
        client: Host,
        sites: list[ProbeSite],
        product_key: str | None = None,
        session_ordinal: int = 0,
    ):
        """Resumable form of :meth:`run_session`.

        A generator state machine that yields while awaiting bytes (and
        for every backoff or injected-stall tick), so a scheduler can
        multiplex thousands of sessions; driven inline via
        :func:`repro.netsim.events.drive` it performs exactly the
        historical synchronous work.  Returns the
        :class:`SessionOutcome` via ``StopIteration``.
        """
        outcome = SessionOutcome()
        http = HttpClient(client)
        attempt = 0
        while True:
            try:
                yield from http.request_task(
                    "GET", self.reporting_host, "/ad", port=self.report_port
                )
                break
            except (ConnectionRefused, ConnectionReset, HttpError) as exc:
                delay = self._backoff_tick(
                    attempt, "ad", client.hostname, None, outcome
                )
                if delay is None:
                    outcome.errors.append(f"ad fetch: {exc}")
                    return outcome
                for _ in range(delay):
                    yield
                attempt += 1
        for site in sites:
            yield from self._probe_and_report(
                client, http, site, product_key, outcome, session_ordinal
            )
        return outcome

    def _probe_and_report(
        self,
        client: Host,
        http: HttpClient,
        site: ProbeSite,
        product_key: str | None,
        outcome: SessionOutcome,
        session_ordinal: int = 0,
    ):
        outcome.probes_attempted += 1
        permitted = yield from self._policy_permits(client, site.hostname, outcome)
        if not permitted:
            return
        result = yield from ProbeClient(client, registry=self.metrics).probe_task(
            site.hostname, 443
        )
        if not result.ok:
            if result.error.startswith("connect"):
                outcome.connect_failed += 1
            else:
                outcome.probe_failed += 1
            outcome.errors.append(f"{site.hostname}: {result.error}")
            return
        body = "".join(pem_encode(der) for der in result.der_chain).encode("ascii")
        headers = {
            "X-Probed-Host": site.hostname,
            "Content-Type": "application/x-pem-file",
        }
        if self.sim_product_header and product_key:
            headers["X-Sim-Product"] = product_key
        plan = self.fault_plan
        if plan is not None:
            stall = plan.stall_ticks("wire", site.hostname, session_ordinal)
            if stall:
                # Injected client-side stall: under a scheduler these
                # are real delay ticks holding the session slot.
                self.metrics.inc("faults.injected", kind="stall")
                for _ in range(stall):
                    yield
        yield from self._submit_report(http, site.hostname, body, headers, outcome)

    def _backoff_tick(
        self,
        attempt: int,
        leg: str,
        site: str,
        retry_after: int | None,
        outcome: SessionOutcome,
    ) -> int | None:
        """Account one backoff wait; ``None`` when the budget says give up.

        Returns the tick count the caller should wait (yield) — a pure
        function of the backoff seed and the (leg, site, attempt)
        coordinates, accounted against the session deadline.  Under a
        scheduler those ticks are real suspensions; driven inline they
        cost nothing but budget, exactly the historical accounting.
        """
        if attempt >= self.report_retry_limit:
            return None
        delay = self.backoff.delay(attempt, leg, site, retry_after=retry_after)
        if outcome.backoff_ticks + delay > self.session_deadline_ticks:
            outcome.deadline_exhausted += 1
            self.metrics.inc("tool.deadline_exhausted")
            return None
        outcome.backoff_ticks += delay
        outcome.report_retries += 1
        self.metrics.inc("tool.report_retries", leg=leg)
        return delay

    def _submit_report(
        self,
        http: HttpClient,
        site_hostname: str,
        body: bytes,
        headers: dict[str, str],
        outcome: SessionOutcome,
    ):
        """POST one report, retrying transient failures with backoff.

        Retryable: connection refused/reset, incomplete responses, 429
        back-pressure and 5xx — honouring the server's ``Retry-After``
        as a floor on the backoff delay.  Any other 4xx is a permanent
        rejection.  Every terminal path counts exactly once against
        ``reports_delivered`` or ``report_failed``.
        """
        attempt = 0
        while True:
            retry_after = None
            try:
                response = yield from http.request_task(
                    "POST",
                    self.reporting_host,
                    "/report",
                    port=self.report_port,
                    body=body,
                    headers=headers,
                )
            except (ConnectionRefused, ConnectionReset, HttpError) as exc:
                error = f"report: {exc}"
            else:
                if response.ok:
                    outcome.reports_delivered += 1
                    return
                if response.status != 429 and response.status < 500:
                    outcome.report_failed += 1
                    outcome.errors.append(
                        f"report rejected ({response.status}): {response.body[:80]!r}"
                    )
                    return
                header = response.headers.get("retry-after")
                if header is not None:
                    try:
                        retry_after = max(0, int(header))
                    except ValueError:
                        retry_after = None
                error = (
                    f"report rejected ({response.status}): {response.body[:80]!r}"
                )
            delay = self._backoff_tick(
                attempt, "report", site_hostname, retry_after, outcome
            )
            if delay is None:
                outcome.report_failed += 1
                outcome.errors.append(error)
                return
            for _ in range(delay):
                yield
            attempt += 1

    def _policy_permits(self, client: Host, hostname: str, outcome: SessionOutcome):
        """The Flash runtime's mandatory socket-policy check."""
        for port in self.policy_ports:
            try:
                policy = yield from fetch_policy_task(client, hostname, port)
            except ConnectionRefused:
                continue
            except (PolicyError, ConnectionReset):
                outcome.policy_denied += 1
                return False
            if policy.permits("tlsresearch.byu.edu", 443):
                return True
            outcome.policy_denied += 1
            return False
        outcome.policy_denied += 1
        return False
