"""The throughput front end: many reporting clients, one server, batched.

:class:`IngestLoop` drives report submissions as cooperative tasks on a
:class:`~repro.netsim.loop.CooperativeLoop`: each submission connects,
trickles its POST body in chunks (yielding between chunks so other
connections progress), then reads the verdict.  With a
:class:`~repro.measure.store.ReportStore` attached the loop owns the
flush cadence — the store runs with ``auto_flush`` off so appends from
many connections coalesce into large batches, and the loop flushes
every ``flush_every`` completed tick and whenever the server starts
answering 429 (the store's ``overloaded`` back-pressure), after which
deferred submissions are requeued.

This is the netsim equivalent of a selector-loop ingest server: one
process, thousands of interleaved connections, bounded buffers, and an
explicit deferred-accept story instead of an unbounded accept queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.faults.plan import Backoff
from repro.httpmin.codec import HttpError, HttpRequest, HttpResponse
from repro.netsim.loop import CooperativeLoop
from repro.netsim.network import ConnectionRefused, ConnectionReset, Host
from repro.obs.metrics import MetricsRegistry


def _retry_after(response: HttpResponse | None) -> int | None:
    if response is None:
        return None
    header = response.headers.get("retry-after")
    if header is None:
        return None
    try:
        return max(0, int(header))
    except ValueError:
        return None


@dataclass
class ReportSubmission:
    """One report on its way to the collection server."""

    client: Host
    hostname: str  # the probed host the report is about
    body: bytes  # PEM chain payload
    product_key: str | None = None
    retries: int = 0
    stall_ticks: int = 0  # injected client-side delay before the first byte
    ticks_waited: int = 0  # backoff ticks spent, counted against the deadline
    status: str = "pending"  # pending | delivered | deferred | failed
    response: HttpResponse | None = field(default=None, repr=False)

    def request(self, server_hostname: str) -> HttpRequest:
        headers = {
            "Host": server_hostname,
            "X-Probed-Host": self.hostname,
            "Content-Type": "application/x-pem-file",
        }
        if self.product_key:
            headers["X-Sim-Product"] = self.product_key
        return HttpRequest("POST", "/report", headers=headers, body=self.body)


class IngestLoop:
    """Cooperative multi-connection driver for report ingest.

    ``max_connections`` bounds concurrently open connections (the
    admission cap); ``chunk_size`` is how much of a request each task
    sends per tick; ``max_retries`` bounds how often one submission is
    requeued after a 429 before it is marked failed.
    """

    def __init__(
        self,
        server_hostname: str,
        port: int = 80,
        *,
        max_connections: int = 32,
        chunk_size: int = 2048,
        max_retries: int = 16,
        store=None,  # ReportStore | None — owns the flush cadence
        flush_every: int | None = 8,
        registry: MetricsRegistry | None = None,
        backoff: Backoff | None = None,
        deadline_ticks: int | None = None,
    ) -> None:
        self.server_hostname = server_hostname
        self.port = port
        self.chunk_size = chunk_size
        self.max_retries = max_retries
        self.store = store
        self.flush_every = flush_every
        # Jittered wait between retries, in cooperative ticks; a
        # submission that would exceed ``deadline_ticks`` of cumulative
        # waiting fails instead of retrying forever.
        self.backoff = backoff if backoff is not None else Backoff(0)
        self.deadline_ticks = deadline_ticks
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.loop = CooperativeLoop(max_active=max_connections)
        self.delivered: list[ReportSubmission] = []
        self.failed: list[ReportSubmission] = []
        self._c_submitted = self.metrics.counter("ingest.submitted")
        self._c_delivered = self.metrics.counter("ingest.delivered")
        self._c_deferred = self.metrics.counter("ingest.deferred")
        self._c_failed = self.metrics.counter("ingest.failed")

    @property
    def peak_active(self) -> int:
        return self.loop.peak_active

    def submit(self, submission: ReportSubmission) -> None:
        self._c_submitted.inc()
        self.loop.spawn(lambda: self._task(submission))

    def _task(self, submission: ReportSubmission) -> Iterator[None]:
        stall, submission.stall_ticks = submission.stall_ticks, 0
        for _ in range(stall):
            yield  # injected stall: a slow consumer device holding a slot
        payload = submission.request(self.server_hostname).encode()
        try:
            sock = submission.client.connect(self.server_hostname, self.port)
        except ConnectionRefused:
            yield from self._retry_or_fail(submission, "refused")
            return
        response = None
        reset = False
        try:
            for offset in range(0, len(payload), self.chunk_size):
                sock.send(payload[offset : offset + self.chunk_size])
                yield  # let other connections make progress
            response, _ = HttpResponse.try_decode(sock.recv())
        except (ConnectionReset, HttpError):
            reset = True
        finally:
            sock.close()
        if reset or response is None:
            yield from self._retry_or_fail(
                submission, "reset" if reset else "no-response"
            )
            return
        submission.response = response
        if response.status == 429:
            # The server pushed back; drain the store, then come back
            # after its Retry-After.
            self._c_deferred.inc()
            if self.store is not None:
                self.store.flush()
            yield from self._retry_or_fail(
                submission, "429", retry_after=_retry_after(response) or 1
            )
        elif response.ok:
            submission.status = "delivered"
            self._c_delivered.inc()
            self.delivered.append(submission)
        elif response.status >= 500:
            yield from self._retry_or_fail(
                submission, "5xx", retry_after=_retry_after(response)
            )
        else:
            self._fail(submission)  # permanent rejection (4xx)

    def _fail(self, submission: ReportSubmission) -> None:
        submission.status = "failed"
        self._c_failed.inc()
        self.failed.append(submission)

    def _retry_or_fail(
        self,
        submission: ReportSubmission,
        reason: str,
        retry_after: int | None = None,
    ) -> Iterator[None]:
        """Back off (still holding the slot), then retry the submission.

        The wait is jittered deterministic ticks floored by the server's
        ``Retry-After``; the retry budget and the cumulative-wait
        deadline both bound how long one report can linger.
        """
        submission.retries += 1
        if submission.retries > self.max_retries:
            self._fail(submission)
            return
        delay = self.backoff.delay(
            submission.retries - 1,
            submission.client.hostname,
            submission.hostname,
            retry_after=retry_after,
        )
        if (
            self.deadline_ticks is not None
            and submission.ticks_waited + delay > self.deadline_ticks
        ):
            self.metrics.inc("ingest.deadline_exhausted")
            self._fail(submission)
            return
        submission.ticks_waited += delay
        submission.status = "deferred"
        self.metrics.inc("ingest.retries", reason=reason)
        for _ in range(delay):
            yield
        yield from self._task(submission)

    def _on_tick(self, loop: CooperativeLoop) -> None:
        if (
            self.store is not None
            and self.flush_every
            and loop.ticks % self.flush_every == 0
        ):
            self.store.flush()

    def run(self) -> dict:
        """Drive every queued submission to an outcome; flush at the end."""
        ticks = self.loop.run(on_tick=self._on_tick)
        if self.store is not None:
            self.store.flush()
        return {
            "ticks": ticks,
            "submitted": self._c_submitted.value,
            "delivered": len(self.delivered),
            "failed": len(self.failed),
            "peak_active": self.loop.peak_active,
            "task_failures": self.loop.task_failures,
        }
