"""Report storage: detailed mismatch records plus aggregate counters.

At paper scale (12.3M measurements) the matched majority is stored as
counters keyed by (country, host type, hostname); every mismatch — the
interesting 0.41 % — is stored in full.  Wire-mode runs also keep a
reservoir of matched records for inspection.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass, field

from repro.measure.records import MeasurementRecord


@dataclass
class FailureCounters:
    """Where sessions and probes fell over (§4: not all clients complete)."""

    sessions_started: int = 0
    tool_not_run: int = 0  # no Flash / left page (impression wasted)
    policy_denied: int = 0
    connect_failed: int = 0
    probe_failed: int = 0
    report_failed: int = 0


class ReportDatabase:
    """In-memory store with the query surface the analysis needs."""

    def __init__(self, matched_sample_limit: int = 1000) -> None:
        self.records: list[MeasurementRecord] = []
        self.matched_counts: Counter[tuple[str, str, str]] = Counter()
        self.matched_samples: list[MeasurementRecord] = []
        self.failures = FailureCounters()
        self._matched_sample_limit = matched_sample_limit

    # -- ingest ------------------------------------------------------------

    def add_mismatch(self, record: MeasurementRecord) -> None:
        if not record.mismatch:
            raise ValueError("add_mismatch() requires a mismatch record")
        self.records.append(record)

    def add_matched(self, record: MeasurementRecord) -> None:
        """Store a matched measurement (counter + bounded sample)."""
        if record.mismatch:
            raise ValueError("add_matched() requires a non-mismatch record")
        key = (record.country or "??", record.host_type, record.hostname)
        self.matched_counts[key] += 1
        if len(self.matched_samples) < self._matched_sample_limit:
            self.matched_samples.append(record)

    def add_matched_bulk(
        self, country: str, host_type: str, hostname: str, count: int
    ) -> None:
        """Fast-mode ingest: ``count`` matched measurements at once."""
        if count < 0:
            raise ValueError("negative bulk count")
        if count:
            self.matched_counts[(country, host_type, hostname)] += count

    # -- totals --------------------------------------------------------------

    @property
    def mismatch_count(self) -> int:
        return len(self.records)

    @property
    def matched_count(self) -> int:
        return sum(self.matched_counts.values())

    @property
    def total_measurements(self) -> int:
        return self.matched_count + self.mismatch_count

    @property
    def proxied_rate(self) -> float:
        total = self.total_measurements
        return self.mismatch_count / total if total else 0.0

    # -- breakdowns -----------------------------------------------------------

    def totals_by_country(self) -> dict[str, tuple[int, int]]:
        """country → (proxied, total)."""
        result: dict[str, list[int]] = {}
        for (country, _, _), count in self.matched_counts.items():
            result.setdefault(country, [0, 0])[1] += count
        for record in self.records:
            country = record.country or "??"
            entry = result.setdefault(country, [0, 0])
            entry[0] += 1
            entry[1] += 1
        return {c: (p, t) for c, (p, t) in result.items()}

    def totals_by_host_type(self) -> dict[str, tuple[int, int]]:
        """host type → (proxied, total)."""
        result: dict[str, list[int]] = {}
        for (_, host_type, _), count in self.matched_counts.items():
            result.setdefault(host_type, [0, 0])[1] += count
        for record in self.records:
            entry = result.setdefault(record.host_type, [0, 0])
            entry[0] += 1
            entry[1] += 1
        return {h: (p, t) for h, (p, t) in result.items()}

    def mismatches(self) -> list[MeasurementRecord]:
        return list(self.records)

    def distinct_proxied_ips(self) -> int:
        return len({record.client_ip for record in self.records})

    def aggregate_signature(self) -> str:
        """Order-insensitive digest of everything the analysis reads.

        Two databases with the same signature hold the same matched
        counters, the same mismatch multiset (down to certificate
        fingerprints) and the same failure totals — the equality the
        worker-count determinism guarantees are stated in terms of.
        """
        digest = hashlib.blake2s()
        for key, count in sorted(self.matched_counts.items()):
            digest.update(repr((key, count)).encode("utf-8"))
        mismatch_keys = sorted(
            (
                record.country or "??",
                record.hostname,
                record.client_ip,
                record.campaign,
                record.leaf.fingerprint,
                record.leaf.serial_number,
                tuple(c.fingerprint for c in record.chain),
            )
            for record in self.records
        )
        for key in mismatch_keys:
            digest.update(repr(key).encode("utf-8"))
        digest.update(repr(sorted(vars(self.failures).items())).encode("utf-8"))
        return digest.hexdigest()

    def merge(self, other: "ReportDatabase") -> None:
        """Fold another database into this one (campaign shards)."""
        self.records.extend(other.records)
        self.matched_counts.update(other.matched_counts)
        space = self._matched_sample_limit - len(self.matched_samples)
        if space > 0:
            self.matched_samples.extend(other.matched_samples[:space])
        for name in vars(self.failures):
            setattr(
                self.failures,
                name,
                getattr(self.failures, name) + getattr(other.failures, name),
            )
