"""Report storage: detailed mismatch records plus aggregate counters.

At paper scale (12.3M measurements) the matched majority is stored as
counters keyed by (country, host type, hostname); every mismatch — the
interesting 0.41 % — is stored in full.  Wire-mode runs also keep a
seeded reservoir sample of matched records for inspection.

The per-country/per-host-type breakdowns the analysis tables read are
maintained incrementally at ingest time; the on-disk streaming path
(:mod:`repro.measure.store`) keeps the same aggregates without holding
any records, and both sides of that split must produce byte-identical
:func:`combine_signature` digests — which is why the signature lives
here as a function of the aggregate state rather than a method over
the record list.
"""

from __future__ import annotations

import hashlib
import random
from collections import Counter
from dataclasses import dataclass

from repro.measure.records import MeasurementRecord


@dataclass
class FailureCounters:
    """Where sessions and probes fell over (§4: not all clients complete)."""

    sessions_started: int = 0
    tool_not_run: int = 0  # no Flash / left page (impression wasted)
    policy_denied: int = 0
    connect_failed: int = 0
    probe_failed: int = 0
    report_failed: int = 0


def record_signature_key(record: MeasurementRecord) -> tuple:
    """The fields of one mismatch that enter the aggregate signature.

    Everything the analysis distinguishes records by — down to
    certificate fingerprints — but none of the bulky summaries, so a
    streaming aggregator can keep the keys of millions of mismatches
    without keeping the records.
    """
    return (
        record.country or "??",
        record.hostname,
        record.client_ip,
        record.campaign,
        record.leaf.fingerprint,
        record.leaf.serial_number,
        tuple(c.fingerprint for c in record.chain),
    )


def combine_signature(
    matched_counts: Counter,
    mismatch_keys: list[tuple],
    failures: FailureCounters,
) -> str:
    """Order-insensitive digest over aggregate report state.

    Shared by :class:`ReportDatabase` and the on-disk streaming
    aggregator: two stores with the same signature hold the same
    matched counters, the same mismatch multiset and the same failure
    totals, whichever path ingested them.
    """
    digest = hashlib.blake2s()
    for key, count in sorted(matched_counts.items()):
        digest.update(repr((key, count)).encode("utf-8"))
    for key in sorted(mismatch_keys):
        digest.update(repr(key).encode("utf-8"))
    digest.update(repr(sorted(vars(failures).items())).encode("utf-8"))
    return digest.hexdigest()


class ReportDatabase:
    """In-memory store with the query surface the analysis needs."""

    def __init__(
        self, matched_sample_limit: int = 1000, sample_seed: int = 0
    ) -> None:
        self.records: list[MeasurementRecord] = []
        self.matched_counts: Counter[tuple[str, str, str]] = Counter()
        self.matched_samples: list[MeasurementRecord] = []
        self.failures = FailureCounters()
        self._matched_sample_limit = matched_sample_limit
        # Reservoir state: every matched record seen gets an equal
        # chance of a sample slot (Algorithm R), seeded so a fixed
        # (seed, ingest order) reproduces the same sample exactly.
        self._matched_seen = 0
        self._sample_rng = random.Random(sample_seed)
        # Breakdown caches, maintained at ingest time: the analysis
        # tables call totals_by_country()/totals_by_host_type()
        # repeatedly and rebuilding them was O(records + counter keys)
        # per call.
        self._country_totals: dict[str, list[int]] = {}
        self._host_type_totals: dict[str, list[int]] = {}
        self._proxied_ips: set[str] = set()

    # -- ingest ------------------------------------------------------------

    def add_mismatch(self, record: MeasurementRecord) -> None:
        if not record.mismatch:
            raise ValueError("add_mismatch() requires a mismatch record")
        self.records.append(record)
        country = record.country or "??"
        entry = self._country_totals.setdefault(country, [0, 0])
        entry[0] += 1
        entry[1] += 1
        entry = self._host_type_totals.setdefault(record.host_type, [0, 0])
        entry[0] += 1
        entry[1] += 1
        self._proxied_ips.add(record.client_ip)

    def add_matched(self, record: MeasurementRecord) -> None:
        """Store a matched measurement (counter + seeded reservoir)."""
        if record.mismatch:
            raise ValueError("add_matched() requires a non-mismatch record")
        country = record.country or "??"
        key = (country, record.host_type, record.hostname)
        self.matched_counts[key] += 1
        self._count_matched(country, record.host_type, 1)
        self._matched_seen += 1
        if len(self.matched_samples) < self._matched_sample_limit:
            self.matched_samples.append(record)
        else:
            slot = self._sample_rng.randrange(self._matched_seen)
            if slot < self._matched_sample_limit:
                self.matched_samples[slot] = record

    def add_matched_bulk(
        self, country: str, host_type: str, hostname: str, count: int
    ) -> None:
        """Fast-mode ingest: ``count`` matched measurements at once."""
        if count < 0:
            raise ValueError("negative bulk count")
        if count:
            self.matched_counts[(country, host_type, hostname)] += count
            self._count_matched(country, host_type, count)

    def _count_matched(self, country: str, host_type: str, count: int) -> None:
        self._country_totals.setdefault(country, [0, 0])[1] += count
        self._host_type_totals.setdefault(host_type, [0, 0])[1] += count

    # -- totals --------------------------------------------------------------

    @property
    def mismatch_count(self) -> int:
        return len(self.records)

    @property
    def matched_count(self) -> int:
        return sum(self.matched_counts.values())

    @property
    def total_measurements(self) -> int:
        return self.matched_count + self.mismatch_count

    @property
    def proxied_rate(self) -> float:
        total = self.total_measurements
        return self.mismatch_count / total if total else 0.0

    # -- breakdowns -----------------------------------------------------------

    def totals_by_country(self) -> dict[str, tuple[int, int]]:
        """country → (proxied, total); keys sorted for stable rendering."""
        return {
            country: (proxied, total)
            for country, (proxied, total) in sorted(self._country_totals.items())
        }

    def totals_by_host_type(self) -> dict[str, tuple[int, int]]:
        """host type → (proxied, total); keys sorted for stable rendering."""
        return {
            host_type: (proxied, total)
            for host_type, (proxied, total) in sorted(
                self._host_type_totals.items()
            )
        }

    def mismatches(self) -> list[MeasurementRecord]:
        return list(self.records)

    def distinct_proxied_ips(self) -> int:
        return len(self._proxied_ips)

    def aggregate_signature(self) -> str:
        """Order-insensitive digest of everything the analysis reads.

        Two databases with the same signature hold the same matched
        counters, the same mismatch multiset (down to certificate
        fingerprints) and the same failure totals — the equality the
        worker-count and on-disk-vs-in-memory determinism guarantees
        are stated in terms of.
        """
        return combine_signature(
            self.matched_counts,
            [record_signature_key(record) for record in self.records],
            self.failures,
        )

    def merge(self, other: "ReportDatabase") -> None:
        """Fold another database into this one (campaign shards)."""
        for record in other.records:
            self.records.append(record)
            self._proxied_ips.add(record.client_ip)
        self.matched_counts.update(other.matched_counts)
        for country, (proxied, total) in other._country_totals.items():
            entry = self._country_totals.setdefault(country, [0, 0])
            entry[0] += proxied
            entry[1] += total
        for host_type, (proxied, total) in other._host_type_totals.items():
            entry = self._host_type_totals.setdefault(host_type, [0, 0])
            entry[0] += proxied
            entry[1] += total
        self._merge_reservoir(other)
        for name in vars(self.failures):
            setattr(
                self.failures,
                name,
                getattr(self.failures, name) + getattr(other.failures, name),
            )

    def _merge_reservoir(self, other: "ReportDatabase") -> None:
        """Reservoir-merge the other shard's matched sample.

        Slots are filled by weighted coin flips between the two
        reservoirs (weight = records each side has seen), so a merged
        sample approximates a uniform draw over the union instead of
        privileging whichever shard merged first.  Deterministic for a
        fixed sample seed and merge order.
        """
        total_seen = self._matched_seen + other._matched_seen
        if other.matched_samples:
            if not self.matched_samples:
                self.matched_samples = list(
                    other.matched_samples[: self._matched_sample_limit]
                )
            else:
                ours = self.matched_samples
                theirs = other.matched_samples
                weight_ours = self._matched_seen
                weight_theirs = other._matched_seen
                merged: list[MeasurementRecord] = []
                i = j = 0
                while len(merged) < self._matched_sample_limit and (
                    i < len(ours) or j < len(theirs)
                ):
                    if i >= len(ours):
                        take_theirs = True
                    elif j >= len(theirs):
                        take_theirs = False
                    else:
                        draw = self._sample_rng.random()
                        take_theirs = draw * (weight_ours + weight_theirs) < (
                            weight_theirs
                        )
                    if take_theirs:
                        merged.append(theirs[j])
                        j += 1
                    else:
                        merged.append(ours[i])
                        i += 1
                self.matched_samples = merged
        self._matched_seen = total_seen
