"""The study's server side: report ingestion plus policy-on-port-80.

The paper served the Flash socket policy file on the web server's own
port 80 to dodge captive portals (§3.1).  That means one listener must
speak two protocols; :class:`CombinedPolicyHttpServer` sniffs the first
bytes exactly the way the authors' published policy server did.
"""

from __future__ import annotations

from repro.geoip.database import GeoIpDatabase
from repro.httpmin.codec import HttpRequest, HttpResponse
from repro.httpmin.server import HttpServer
from repro.measure.database import ReportDatabase
from repro.measure.records import CertSummary, MeasurementRecord
from repro.netsim.network import Host, Protocol, StreamSocket
from repro.obs.metrics import MetricsRegistry
from repro.policy.model import PolicyFile
from repro.policy.server import POLICY_REQUEST, PolicyServer
from repro.x509.parse import X509Error, parse_certificate
from repro.x509.pem import PemError, pem_decode_all

# The measurement tool, served as the "ad" payload.
_TOOL_PAYLOAD = b"<html><body><!-- repro measurement tool (flash) --></body></html>"


class ReportingServer:
    """Receives certificate reports and judges mismatches.

    ``expected_leaves`` maps hostname → authoritative leaf fingerprint,
    established the way the authors did it: by probing each target from
    a clean vantage point at study setup.

    Reports land in an in-memory :class:`ReportDatabase`, an on-disk
    :class:`~repro.measure.store.ReportStore`, or both.  With a store
    attached, an overloaded pending buffer turns submissions away with
    429 + ``Retry-After`` until someone flushes — the back-pressure
    contract the ingest loop leans on.
    """

    def __init__(
        self,
        database: ReportDatabase | None,
        geoip: GeoIpDatabase | None,
        study: int,
        campaign: str = "default",
        public_roots=None,
        registry: MetricsRegistry | None = None,
        store=None,  # ReportStore | None
        fault_hook=None,  # Callable[[HttpRequest, Host | None], HttpResponse | None]
    ) -> None:
        if database is None and store is None:
            raise ValueError("ReportingServer needs a database, a store, or both")
        self.database = database
        self.store = store
        # Chaos hook, consulted before the report handler: returning a
        # response injects it (500/503/429 drills) without the report
        # ever touching the database or store.
        self.fault_hook = fault_hook
        self.geoip = geoip
        self.study = study
        self.campaign = campaign
        self.public_roots = public_roots  # RootStore | None
        self.expected_leaves: dict[str, str] = {}
        self.host_types: dict[str, str] = {}
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.http = HttpServer(registry=self.metrics)
        self.http.route("GET", "/ad", self._serve_tool)
        self.http.route("POST", "/report", self._ingest_report)
        # A report whose connection dies mid-parse never reaches the
        # handler; without this hook it would vanish from the failure
        # accounting entirely.
        self.http.on_abandoned = self._report_abandoned

    def expect(self, hostname: str, leaf_fingerprint: str, host_type: str) -> None:
        """Register the authoritative leaf for a probe target."""
        self.expected_leaves[hostname] = leaf_fingerprint
        self.host_types[hostname] = host_type

    def _count_failure(self, name: str) -> None:
        if self.database is not None:
            setattr(
                self.database.failures,
                name,
                getattr(self.database.failures, name) + 1,
            )
        if self.store is not None:
            self.store.add_failure(name)

    # -- handlers ------------------------------------------------------------

    def _serve_tool(self, request: HttpRequest, remote: Host | None) -> HttpResponse:
        self.metrics.inc("reports.tool_served")
        return HttpResponse(200, body=_TOOL_PAYLOAD)

    def _report_abandoned(self, partial: bytes) -> None:
        """A connection closed with an undecodable request still buffered.

        Only report submissions count against the study's failure
        ledger — a half-received ``GET /ad`` wasted an impression, not
        a report.
        """
        request_line = partial.split(b"\r\n", 1)[0]
        if request_line.startswith(b"POST /report"):
            self._count_failure("report_failed")
            self.metrics.inc("reports.rejected", reason="truncated")

    def _ingest_report(self, request: HttpRequest, remote: Host | None) -> HttpResponse:
        if self.fault_hook is not None:
            injected = self.fault_hook(request, remote)
            if injected is not None:
                return injected
        if self.store is not None and self.store.overloaded:
            # Deferred accept: the pending write buffer is full, so the
            # client must come back after the next flush drains it.
            self.store.defer()
            return HttpResponse(
                429, headers={"Retry-After": "1"}, body=b"ingest backlog"
            )
        hostname = request.headers.get("x-probed-host", "")
        if not hostname or hostname not in self.expected_leaves:
            self._count_failure("report_failed")
            self.metrics.inc("reports.rejected", reason="unknown-host")
            return HttpResponse(400, body=b"unknown probed host")
        try:
            der_chain = pem_decode_all(request.body.decode("ascii", errors="replace"))
        except PemError as exc:
            self._count_failure("report_failed")
            self.metrics.inc("reports.rejected", reason="pem")
            return HttpResponse(400, body=str(exc).encode())
        if not der_chain:
            self._count_failure("report_failed")
            self.metrics.inc("reports.rejected", reason="empty")
            return HttpResponse(400, body=b"empty report")
        try:
            chain = [parse_certificate(der) for der in der_chain]
        except X509Error as exc:
            self._count_failure("report_failed")
            self.metrics.inc("reports.rejected", reason="x509")
            return HttpResponse(400, body=str(exc).encode())

        client_ip = remote.ip if remote is not None else "0.0.0.0"
        country = self.geoip.lookup(client_ip) if self.geoip is not None else None
        leaf = chain[0]
        mismatch = leaf.fingerprint() != self.expected_leaves[hostname]
        chain_valid = False
        if self.public_roots is not None:
            from repro.x509.verify import validate_chain

            chain_valid = bool(
                validate_chain(chain, self.public_roots, hostname=hostname)
            )
        record = MeasurementRecord(
            study=self.study,
            campaign=self.campaign,
            client_ip=client_ip,
            country=country,
            hostname=hostname,
            host_type=self.host_types.get(hostname, "?"),
            mismatch=mismatch,
            leaf=CertSummary.from_certificate(leaf),
            chain=tuple(CertSummary.from_certificate(c) for c in chain[1:]),
            chain_valid=chain_valid,
            via="wire",
            product_key=request.headers.get("x-sim-product") or None,
        )
        if mismatch:
            if self.database is not None:
                self.database.add_mismatch(record)
            if self.store is not None:
                self.store.add_mismatch(record)
            self.metrics.inc("reports.ingested", verdict="mismatch")
        else:
            if self.database is not None:
                self.database.add_matched(record)
            if self.store is not None:
                self.store.add_matched(record)
            self.metrics.inc("reports.ingested", verdict="matched")
        return HttpResponse(200, body=b"ok")


class CombinedPolicyHttpServer(Protocol):
    """One port, two protocols: Flash policy requests and HTTP.

    Sniffs the first client bytes: a literal ``<policy-file-request/>``
    is answered by the policy server, anything else is handed to the
    HTTP server.  This is exactly the §3.1 arrangement.
    """

    def __init__(self, policy: PolicyFile, http: HttpServer) -> None:
        self._policy_template = policy
        self._http_template = http
        self._delegate: Protocol | None = None
        self._buffer = b""

    def factory(self) -> "CombinedPolicyHttpServer":
        return CombinedPolicyHttpServer(self._policy_template, self._http_template)

    def data_received(self, sock: StreamSocket, data: bytes) -> None:
        if self._delegate is not None:
            self._delegate.data_received(sock, data)
            return
        self._buffer += data
        probe_len = len(POLICY_REQUEST)
        if self._buffer.startswith(POLICY_REQUEST[: min(len(self._buffer), probe_len)]):
            if len(self._buffer) < probe_len:
                return  # could still be either; wait for more bytes
            delegate: Protocol = PolicyServer(self._policy_template).factory()
        else:
            delegate = self._http_template.factory()
        self._delegate = delegate
        buffered, self._buffer = self._buffer, b""
        delegate.data_received(sock, buffered)

    def connection_lost(self, sock: StreamSocket) -> None:
        if self._delegate is not None:
            self._delegate.connection_lost(sock)
