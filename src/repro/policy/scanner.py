"""Policy-file scanning and probe-site selection (Table 1).

The authors scanned the Alexa top 1M for hosts serving permissive
socket policy files, then chose the highest-ranked hits per category
(popular / business / pornographic) as probe targets.  The scanner
here does the same over a netsim universe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.network import ConnectionRefused, Host
from repro.policy.model import PolicyError
from repro.policy.server import fetch_policy


@dataclass(frozen=True)
class ScanResult:
    """Outcome of scanning one site."""

    hostname: str
    rank: int
    category: str
    has_policy: bool
    permissive: bool
    error: str = ""


@dataclass
class PolicyScanner:
    """Scans ranked sites for permissive policy files.

    ``policy_port`` defaults to 843 (the dedicated Flash port); sites
    in the simulation may also serve policies on port 80 like the
    authors did, so a list of fallback ports is scanned in order.
    """

    client: Host
    policy_ports: tuple[int, ...] = (843, 80)
    results: list[ScanResult] = field(default_factory=list)

    def scan(self, sites: list[tuple[str, int, str]]) -> list[ScanResult]:
        """Scan ``(hostname, rank, category)`` triples; returns all results."""
        results = []
        for hostname, rank, category in sites:
            results.append(self._scan_one(hostname, rank, category))
        self.results.extend(results)
        return results

    def _scan_one(self, hostname: str, rank: int, category: str) -> ScanResult:
        for port in self.policy_ports:
            try:
                policy = fetch_policy(self.client, hostname, port)
            except ConnectionRefused:
                continue
            except PolicyError as exc:
                return ScanResult(
                    hostname, rank, category, True, False, error=str(exc)
                )
            return ScanResult(
                hostname,
                rank,
                category,
                True,
                policy.is_permissive_for_tls,
            )
        return ScanResult(hostname, rank, category, False, False, error="no policy")

    def select_probe_sites(
        self,
        results: list[ScanResult],
        per_category: dict[str, int],
    ) -> dict[str, list[ScanResult]]:
        """Pick the highest-ranked permissive sites per category.

        ``per_category`` maps category name → how many sites to take
        (the paper took 6 popular, 5 business, 5 pornographic).
        """
        selected: dict[str, list[ScanResult]] = {}
        for category, count in per_category.items():
            candidates = sorted(
                (r for r in results if r.category == category and r.permissive),
                key=lambda r: r.rank,
            )
            selected[category] = candidates[:count]
        return selected
