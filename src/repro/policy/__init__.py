"""Flash socket policy files.

The Flash runtime refuses raw sockets unless the destination host
serves a permissive ``<cross-domain-policy>`` file (§3.1 step 2).  This
constraint shaped the whole study: only 17 sites in the Alexa top 1M
could be probed, found by scanning for permissive policy files.

* :class:`PolicyFile` — the XML document and its ``permits`` logic.
* :class:`PolicyServer` — serves the file using the real Flash wire
  protocol (``<policy-file-request/>\\0`` → XML + NUL).
* :func:`fetch_policy` — client-side fetch + parse.
* :class:`PolicyScanner` — the Alexa top-1M scan that produced Table 1.
"""

from repro.policy.model import PolicyError, PolicyFile, PolicyRule
from repro.policy.scanner import PolicyScanner, ScanResult
from repro.policy.server import PolicyServer, fetch_policy

__all__ = [
    "PolicyError",
    "PolicyFile",
    "PolicyRule",
    "PolicyScanner",
    "PolicyServer",
    "ScanResult",
    "fetch_policy",
]
