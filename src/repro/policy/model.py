"""Cross-domain policy document model and XML codec.

The grammar is the (tiny) Adobe cross-domain policy format:

    <cross-domain-policy>
      <allow-access-from domain="*" to-ports="443,8443" />
    </cross-domain-policy>

Parsing uses :mod:`xml.etree` — the documents are machine-generated
and small, and strictness errors must surface as policy denials.
"""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree
from dataclasses import dataclass


class PolicyError(ValueError):
    """Raised for malformed policy documents."""


@dataclass(frozen=True)
class PolicyRule:
    """One ``allow-access-from`` element."""

    domain: str = "*"
    to_ports: str = "*"

    def permits(self, domain: str, port: int) -> bool:
        return self._domain_matches(domain) and self._port_matches(port)

    def _domain_matches(self, domain: str) -> bool:
        pattern = self.domain.lower()
        domain = domain.lower()
        if pattern == "*":
            return True
        if pattern.startswith("*."):
            return domain.endswith(pattern[1:]) or domain == pattern[2:]
        return domain == pattern

    def _port_matches(self, port: int) -> bool:
        for part in self.to_ports.split(","):
            part = part.strip()
            if not part:
                continue
            if part == "*":
                return True
            if "-" in part:
                low, _, high = part.partition("-")
                try:
                    if int(low) <= port <= int(high):
                        return True
                except ValueError:
                    continue
            else:
                try:
                    if int(part) == port:
                        return True
                except ValueError:
                    continue
        return False


@dataclass(frozen=True)
class PolicyFile:
    """A parsed cross-domain policy."""

    rules: tuple[PolicyRule, ...] = ()

    @classmethod
    def permissive(cls, ports: str = "*") -> "PolicyFile":
        """The wide-open policy the probed sites had to serve."""
        return cls((PolicyRule(domain="*", to_ports=ports),))

    def permits(self, domain: str, port: int) -> bool:
        return any(rule.permits(domain, port) for rule in self.rules)

    @property
    def is_permissive_for_tls(self) -> bool:
        """Permits any-domain access to port 443 — the Table 1 criterion."""
        return self.permits("measurement.example", 443)

    def to_xml(self) -> str:
        lines = ["<cross-domain-policy>"]
        for rule in self.rules:
            lines.append(
                f'  <allow-access-from domain="{rule.domain}" '
                f'to-ports="{rule.to_ports}" />'
            )
        lines.append("</cross-domain-policy>")
        return "\n".join(lines)

    @classmethod
    def from_xml(cls, text: str) -> "PolicyFile":
        try:
            root = ElementTree.fromstring(text)
        except ElementTree.ParseError as exc:
            raise PolicyError(f"bad policy XML: {exc}") from exc
        if root.tag != "cross-domain-policy":
            raise PolicyError(f"unexpected root element {root.tag!r}")
        rules = []
        for element in root:
            if element.tag != "allow-access-from":
                continue
            rules.append(
                PolicyRule(
                    domain=element.get("domain", ""),
                    to_ports=element.get("to-ports", "*"),
                )
            )
        return cls(tuple(rules))
