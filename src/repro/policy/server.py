"""Socket policy file server and client fetch.

Speaks the real Flash policy protocol: the client sends the literal
string ``<policy-file-request/>`` terminated by a NUL; the server
answers with the XML document, also NUL-terminated, and closes.

The paper served its policy file on port 80 (same as the web server)
to dodge captive portals that block unusual ports (§3.1); the server
here can listen anywhere.
"""

from __future__ import annotations

from repro.netsim.events import drive, settle
from repro.netsim.network import ConnectionRefused, Host, Protocol, StreamSocket
from repro.policy.model import PolicyError, PolicyFile

POLICY_REQUEST = b"<policy-file-request/>\x00"


class PolicyServer(Protocol):
    """Serves one policy document; counts requests."""

    def __init__(self, policy: PolicyFile) -> None:
        self.policy = policy
        self.requests_served = 0
        self._buffer = b""
        self._shared: PolicyServer | None = None

    def factory(self) -> "PolicyServer":
        connection = PolicyServer(self.policy)
        connection._shared = self
        return connection

    def data_received(self, sock: StreamSocket, data: bytes) -> None:
        self._buffer += data
        if POLICY_REQUEST not in self._buffer:
            if len(self._buffer) > len(POLICY_REQUEST):
                sock.close()  # not a policy request; hang up
            return
        sock.send(self.policy.to_xml().encode("utf-8") + b"\x00")
        state = self._shared or self
        state.requests_served += 1
        sock.close()


def fetch_policy(client: Host, hostname: str, port: int = 843) -> PolicyFile:
    """Fetch and parse the policy file from ``hostname:port``.

    Raises :class:`PolicyError` if the host serves nothing or garbage,
    and lets :class:`ConnectionRefused` propagate when there is no
    policy listener at all — callers treat both as "cannot probe".
    """
    return drive(fetch_policy_task(client, hostname, port))


def fetch_policy_task(client: Host, hostname: str, port: int = 843):
    """Resumable form of :func:`fetch_policy`: a generator state machine.

    Yields while awaiting the policy bytes on a scheduled transport and
    returns the parsed :class:`PolicyFile` via ``StopIteration``.
    """
    sock = client.connect(hostname, port)
    try:
        sock.send(POLICY_REQUEST)
        yield from settle(sock)
        raw = sock.recv()
    finally:
        sock.close()
    if not raw:
        raise PolicyError(f"{hostname}:{port} returned no policy data")
    text = raw.split(b"\x00", 1)[0].decode("utf-8", errors="replace")
    return PolicyFile.from_xml(text)


__all__ = [
    "PolicyServer",
    "fetch_policy",
    "fetch_policy_task",
    "POLICY_REQUEST",
    "ConnectionRefused",
]
