"""Table 1 — probe-site selection via the socket-policy-file scan.

The authors scanned the Alexa top 1M for permissive Flash socket
policy files and picked the highest-ranked hits per category.  This
bench rebuilds that scan over the synthetic ranked universe (every
Table 1 site present at its catalog rank, a long tail without
policies) and times the wire-mode scan.
"""

from conftest import emit

from repro.data.sites import STUDY2_SITES
from repro.netsim import Network
from repro.policy import PolicyFile, PolicyScanner, PolicyServer
from repro.data.sites import synthetic_alexa_universe

UNIVERSE_SIZE = 2000

PAPER_TABLE1 = {
    "popular": ["qq.com", "promodj.com", "idwebgame.com", "parsnews.com",
                "idgameland.com", "vcp.ir"],
    "business": ["airdroid.com", "webhost1.ru", "restaurantesecia.com.br",
                 "speedtest.net.in", "iprank.ir"],
    "porn": ["pornclipstv.com", "porno-be.com", "pornbasetube.com",
             "pornozip.net", "pornorasskazov.net"],
}


def build_universe():
    network = Network()
    scanner_host = network.add_host("scanner.example")
    universe = synthetic_alexa_universe(size=UNIVERSE_SIZE, seed=7)
    table1_hosts = {site.hostname for site in STUDY2_SITES}
    permissive = PolicyFile.permissive("443")
    for hostname, rank, category in universe:
        host = network.add_host(hostname)
        # Only the Table 1 sites served permissive policy files.
        if hostname in table1_hosts:
            host.listen(843, PolicyServer(permissive).factory)
    return scanner_host, universe


def test_table1_site_selection(benchmark, output_dir):
    scanner_host, universe = build_universe()

    def scan():
        scanner = PolicyScanner(scanner_host)
        results = scanner.scan(universe)
        return scanner.select_probe_sites(
            results, {"popular": 6, "business": 5, "porn": 5}
        )

    selected = benchmark(scan)

    lines = [
        f"policy-file scan of {len(universe)} ranked sites "
        f"(paper: Alexa top 1M)",
        "",
        f"{'category':<10} {'measured selection':<60}",
    ]
    ok = True
    for category, paper_sites in PAPER_TABLE1.items():
        mine = [r.hostname for r in selected[category]]
        lines.append(f"{category:<10} {', '.join(mine)}")
        lines.append(f"{'  paper':<10} {', '.join(paper_sites)}")
        ok = ok and mine == paper_sites
    lines.append("")
    lines.append(f"selection matches Table 1 exactly: {ok}")
    emit(output_dir, "table1_site_selection", "\n".join(lines))
    assert ok
