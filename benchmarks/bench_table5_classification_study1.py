"""Table 5 — classification of claimed issuer, first study."""

from conftest import emit

from repro.analysis import classification_table
from repro.proxy.profile import ProxyCategory
from repro.reporting import render_classification_table

PAPER_TABLE5 = {
    ProxyCategory.BUSINESS_PERSONAL_FIREWALL: 68.86,
    ProxyCategory.BUSINESS_FIREWALL: 0.59,
    ProxyCategory.PERSONAL_FIREWALL: 0.09,
    ProxyCategory.PARENTAL_CONTROL: 1.33,
    ProxyCategory.ORGANIZATION: 12.66,
    ProxyCategory.SCHOOL: 0.27,
    ProxyCategory.MALWARE: 8.65,
    ProxyCategory.UNKNOWN: 7.14,
    ProxyCategory.TELECOM: 0.0,
    ProxyCategory.CERTIFICATE_AUTHORITY: 0.42,
}


def test_table5_classification_study1(benchmark, study1, output_dir):
    rows = benchmark(lambda: classification_table(study1.database))

    lines = [render_classification_table(rows), "", "paper (Table 5):"]
    for category, percent in PAPER_TABLE5.items():
        lines.append(f"  {category.value:<28} {percent:>6.2f}%")
    emit(output_dir, "table5_classification_study1", "\n".join(lines))

    measured = {row.category: row.percent for row in rows}
    # Shape: firewalls dominate near 69%, malware near 8.65%, and the
    # ordering of the major categories holds.
    assert abs(measured[ProxyCategory.BUSINESS_PERSONAL_FIREWALL] - 68.86) < 8.0
    assert abs(measured[ProxyCategory.MALWARE] - 8.65) < 3.0
    assert abs(measured[ProxyCategory.ORGANIZATION] - 12.66) < 5.0
    assert measured[ProxyCategory.TELECOM] < 0.5
