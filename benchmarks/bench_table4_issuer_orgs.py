"""Table 4 — Issuer Organization field values, first study."""

from conftest import emit

from repro.analysis import issuer_organization_table
from repro.reporting import render_issuer_table

PAPER_TABLE4_TOP10 = [
    ("Bitdefender", 4788),
    ("PSafe Tecnologia S.A.", 1200),
    ("Sendori Inc", 966),
    ("ESET spol. s r. o.", 927),
    ("Null", 829),
    ("Kaspersky Lab ZAO", 589),
    ("Fortinet", 310),
    ("Kurupira.NET", 267),
    ("POSCO", 167),
    ("Qustodio", 109),
]


def test_table4_issuer_orgs(benchmark, study1, scale, output_dir):
    rows, other = benchmark(
        lambda: issuer_organization_table(study1.database, top_n=20)
    )

    lines = [
        f"measured at scale {scale}",
        "",
        render_issuer_table(rows, other),
        "",
        "paper (Table 4) top ten:",
    ]
    for name, count in PAPER_TABLE4_TOP10:
        lines.append(f"  {name:<26} {count:>6,}  (scaled: {count * scale:,.0f})")
    emit(output_dir, "table4_issuer_orgs", "\n".join(lines))

    # Shape: Bitdefender first; the paper's top-five names all present.
    assert rows[0].issuer_organization == "Bitdefender"
    measured_names = {row.issuer_organization for row in rows}
    for name, _ in PAPER_TABLE4_TOP10[:5]:
        assert name in measured_names, f"{name} missing from measured top-20"
