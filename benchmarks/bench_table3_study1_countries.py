"""Table 3 — proxied connections by country, first study."""

from conftest import emit

from repro.analysis import country_breakdown
from repro.data.countries import STUDY1_COUNTRIES, STUDY1_TOTAL
from repro.reporting import render_country_table


def test_table3_study1_countries(benchmark, study1, scale, output_dir):
    breakdown = benchmark(lambda: country_breakdown(study1.database, top_n=20))

    lines = [
        f"measured at scale {scale} (multiply paper numbers by {scale} to compare)",
        "",
        render_country_table(breakdown),
        "",
        "paper (Table 3) top five:",
    ]
    for row in STUDY1_COUNTRIES[:5]:
        lines.append(
            f"  {row.code:<3} proxied {row.proxied:>6,}  total {row.total:>9,}"
            f"  ({100 * row.rate:.2f}%)"
        )
    lines.append(
        f"  paper total: {STUDY1_TOTAL.proxied:,} / {STUDY1_TOTAL.total:,} "
        f"({100 * STUDY1_TOTAL.rate:.2f}%)"
    )
    measured_rate = breakdown.total.percent
    lines.append(f"\nmeasured overall rate: {measured_rate:.2f}%  (paper: 0.41%)")
    emit(output_dir, "table3_study1_countries", "\n".join(lines))

    # Shape assertions: overall rate and the US/BR leadership.
    assert 0.30 < measured_rate < 0.55
    top5 = {row.country for row in breakdown.rows[:5]}
    assert "US" in top5 and "BR" in top5
