"""A3 — root-store census over the proxied population (extension).

The paper's conclusion: "the prevalence of malware using TLS proxying
techniques illustrates the need for stronger controls over the root
stores of browsers and operating systems."  This bench quantifies the
attack surface: audit the root stores of a sample of proxied clients
and attribute every injected root to a product category — the
reproduction's analogue of the Netalyzer Android root-store study
(§8).
"""

import random

from conftest import emit

from repro.analysis.rootstore import RootStoreAuditor, materialize_client_store
from repro.crypto.keystore import KeyStore
from repro.data import products as product_data
from repro.data.sites import ProbeSite
from repro.population.model import ClientPopulation
from repro.proxy.forger import SubstituteCertForger
from repro.study.webpki import build_web_pki

SAMPLE_CLIENTS = 4000


def test_rootstore_census(benchmark, output_dir):
    keystore = KeyStore(seed=42)
    pki = build_web_pki(keystore, [ProbeSite("x.example", "Business")], seed=42)
    factory = pki.root_store()
    forger = SubstituteCertForger(keystore, seed=42)
    population = ClientPopulation(study=2, seed=42, scale=0.01)
    catalog = product_data.catalog_by_key()
    rng = random.Random(42)

    clients = [population.sample_client(rng) for _ in range(SAMPLE_CLIENTS)]
    stores = [
        materialize_client_store(
            factory,
            catalog[c.product_key].profile if c.product_key else None,
            forger,
        )
        for c in clients
    ]

    census = benchmark(lambda: RootStoreAuditor(factory).census(stores))

    proxied = sum(1 for c in clients if c.is_proxied)
    lines = [
        f"clients audited: {census.stores_audited:,} "
        f"({proxied} behind a TLS proxy)",
        f"stores with injected roots: {census.stores_with_injections} "
        f"({100 * census.injection_rate:.2f}% of all clients; "
        "paper's prevalence: 0.41% of connections)",
        "",
        "injected roots by product category:",
    ]
    for category, count in census.findings_by_category.most_common():
        lines.append(f"  {category.value:<28} {count}")
    lines.extend(
        [
            "",
            "Every interception product in the measured ecosystem except the",
            "rogue-CA attacker leaves an attributable root behind — root-store",
            "auditing would surface the paper's entire benevolent and malware",
            "populations, which is exactly the control its conclusion demands.",
        ]
    )
    emit(output_dir, "rootstore_census", "\n".join(lines))

    # Injection rate tracks the interception rate (~0.41% of clients).
    assert census.stores_with_injections == proxied or (
        # rogue-CA style products (no injection) may shave a few off
        proxied - census.stores_with_injections < max(3, proxied * 0.2)
    )
    if census.findings_by_category:
        top_category, _ = census.findings_by_category.most_common(1)[0]
        from repro.proxy.profile import ProxyCategory

        assert top_category is ProxyCategory.BUSINESS_PERSONAL_FIREWALL
