"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  The two
study runs are session-scoped (they feed most benches); the
``benchmark`` fixture then times the analysis step that produces the
artifact, and each bench writes its rendered table — side by side with
the paper's published numbers — to ``benchmarks/output/``.

Scale is controlled by ``REPRO_BENCH_SCALE`` (default 0.25 = 25% of
the paper's measurement volume; 1.0 reproduces full paper scale).
Small-count findings (the 21 IopFail certificates, the 49 DigiCert
masquerades) only rise above sampling noise from ~0.2 upward.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.study import StudyConfig, StudyRunner

BENCH_SEED = 42
OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def study1(scale):
    """Study 1 (fast mode) at the bench scale."""
    config = StudyConfig(study=1, seed=BENCH_SEED, scale=scale, mode="fast")
    return StudyRunner(config).run()


@pytest.fixture(scope="session")
def study2(scale):
    """Study 2 (fast mode) at the bench scale."""
    config = StudyConfig(study=2, seed=BENCH_SEED, scale=scale, mode="fast")
    return StudyRunner(config).run()


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def emit(output_dir: pathlib.Path, name: str, text: str) -> None:
    """Write a regenerated artifact and echo it to the terminal."""
    path = output_dir / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}")
