"""N2 — the §5.2 forged-certificate lab: Kurupira vs Bitdefender.

Wire-mode experiment: an attacker with an untrusted CA sits behind
each product; the paper found Bitdefender blocks the connection while
Kurupira replaces the forged certificate with its own trusted one.
"""

from conftest import emit

from repro.crypto.keystore import KeyStore
from repro.data.sites import ProbeSite
from repro.netsim import Network
from repro.proxy import (
    ForgedUpstreamPolicy,
    ProxyCategory,
    ProxyProfile,
    SubstituteCertForger,
    TlsProxyEngine,
)
from repro.study.webpki import build_web_pki
from repro.tls.probe import ProbeClient
from repro.tls.server import TlsCertServer
from repro.x509 import Name


def run_lab(policy: ForgedUpstreamPolicy, seed: int = 31):
    keystore = KeyStore(seed=seed)
    forger = SubstituteCertForger(keystore, seed=seed)
    site = ProbeSite("bank.example", "Business")
    pki = build_web_pki(keystore, [site], seed=seed)
    network = Network()
    origin = network.add_host("bank.example", ip="203.0.113.30")
    origin.listen(443, TlsCertServer(pki.chain_for("bank.example")).factory)
    victim = network.add_host("victim.example")
    relay = network.add_host("relay.example")

    attacker = TlsProxyEngine(
        ProxyProfile(
            key="bench-attacker",
            issuer=Name.build(common_name="Evil CA", organization="Attacker Inc"),
            category=ProxyCategory.UNKNOWN,
            leaf_key_bits=1024,
            hash_name="sha1",
            injects_root=False,
            forged_upstream=ForgedUpstreamPolicy.MASK,
        ),
        forger,
        upstream_host=relay,
        upstream_trust=pki.root_store(),
    )
    relay.add_interceptor(attacker)
    product = TlsProxyEngine(
        ProxyProfile(
            key=f"bench-product-{policy.value}",
            issuer=Name.build(common_name="Product CA", organization="ProductCo"),
            category=ProxyCategory.BUSINESS_PERSONAL_FIREWALL,
            leaf_key_bits=1024,
            hash_name="sha1",
            forged_upstream=policy,
        ),
        forger,
        upstream_host=relay,
        upstream_trust=pki.root_store(),
        upstream_via_interceptors=True,
    )
    victim.add_interceptor(product)
    result = ProbeClient(victim).probe("bank.example", 443)
    return result, product


def test_forged_cert_handling(benchmark, output_dir):
    def experiment():
        blocked, block_engine = run_lab(ForgedUpstreamPolicy.BLOCK)
        masked, mask_engine = run_lab(ForgedUpstreamPolicy.MASK)
        return blocked, block_engine, masked, mask_engine

    blocked, block_engine, masked, mask_engine = benchmark(experiment)

    lines = [
        "attacker (untrusted CA) on the path behind each product:",
        "",
        f"BLOCK policy (Bitdefender-like): connection ok={blocked.ok}, "
        f"error={blocked.error!r}",
        f"  engine: blocked_forged_upstream={block_engine.blocked_forged_upstream}",
        f"MASK policy (Kurupira-like): connection ok={masked.ok}, "
        f"issuer seen by client={masked.leaf.issuer if masked.ok else None}",
        f"  engine: masked_forged_upstream={mask_engine.masked_forged_upstream}",
        "",
        "paper (§5.2): Bitdefender blocked the forged certificate; Kurupira",
        "replaced it with a signed trusted one, enabling a transparent MitM.",
    ]
    emit(output_dir, "forged_cert_handling", "\n".join(lines))

    assert not blocked.ok and "alert" in blocked.error
    assert block_engine.blocked_forged_upstream == 1
    assert masked.ok
    assert masked.leaf.issuer.organization == "ProductCo"
    assert mask_engine.masked_forged_upstream == 1
