"""Pipeline micro-benchmarks: wire-mode sessions and fast-mode studies.

Not a paper artifact — these quantify the measurement machinery itself
(handshakes per second through the full client→proxy→origin→report
path, and end-to-end fast-mode study throughput), which is what bounds
how far above the default scale the other benches can be pushed.
"""

from conftest import emit

from repro.study import StudyConfig, StudyRunner


def test_wire_session_throughput(benchmark, output_dir):
    """Full wire-mode study slice: policy + TLS + MitM + HTTP report."""

    def run_wire():
        config = StudyConfig(study=1, seed=7, scale=0.0002, mode="wire")
        return StudyRunner(config).run()

    result = benchmark.pedantic(run_wire, rounds=3, iterations=1)
    measurements = result.database.total_measurements
    emit(
        output_dir,
        "pipeline_wire",
        f"wire mode: {measurements} measurements per run; every one crosses\n"
        "policy fetch, partial TLS handshake (MitM where installed) and an\n"
        "HTTP PEM report on simulated sockets.",
    )
    assert measurements > 200
    assert result.database.failures.report_failed == 0


def test_fast_study_throughput(benchmark, output_dir):
    """Fast-mode end-to-end study at 0.5% scale (~14k measurements)."""

    def run_fast():
        config = StudyConfig(study=1, seed=7, scale=0.005, mode="fast")
        return StudyRunner(config).run()

    result = benchmark.pedantic(run_fast, rounds=3, iterations=1)
    emit(
        output_dir,
        "pipeline_fast",
        f"fast mode: {result.database.total_measurements:,} measurements, "
        f"{result.database.mismatch_count} forged certificates per run.",
    )
    assert result.database.total_measurements > 10_000
