"""N3 — appliance security audit throughput.

Times the full adversarial battery over the entire product catalog —
the Waked et al. style fleet audit — and emits the wall time and
products-audited-per-second as JSON, alongside the grade histogram so
regressions in posture modelling show up next to regressions in speed.
"""

import json
import time

from conftest import BENCH_SEED, emit

from repro.audit import ADVERSARIAL_SCENARIOS, audit_catalog


def run_battery():
    start = time.perf_counter()
    report = audit_catalog(seed=BENCH_SEED, workers=1)
    return report, time.perf_counter() - start


def test_appliance_audit(benchmark, output_dir):
    report, wall_time = benchmark.pedantic(run_battery, rounds=1, iterations=1)

    products = len(report.scorecards)
    timing = {
        "seed": BENCH_SEED,
        "products_audited": products,
        "adversarial_scenarios": len(ADVERSARIAL_SCENARIOS),
        # Two probes per scenario (warm-up + attack) plus the control,
        # and one client-leg mimicry probe per product.
        "probes_run": products * ((len(ADVERSARIAL_SCENARIOS) + 1) * 2 + 1),
        "battery_wall_time_s": round(wall_time, 3),
        "products_per_second": round(products / wall_time, 3),
        "grades": report.grade_histogram(),
    }
    emit(output_dir, "appliance_audit", json.dumps(timing, indent=2))

    assert products >= 40  # the whole catalog, not a subset
    assert len(ADVERSARIAL_SCENARIOS) >= 8
    assert timing["products_per_second"] > 0
    # The two §5.2 lab products must reproduce the paper's asymmetry.
    cards = report.by_key()
    assert cards["bitdefender"].grade == "A"
    assert cards["kurupira"].grade == "F"
