"""Table 7 — connections tested by country, second study."""

from conftest import emit

from repro.analysis import country_breakdown
from repro.data.countries import STUDY2_COUNTRIES, STUDY2_TOTAL
from repro.reporting import render_country_table


def test_table7_study2_countries(benchmark, study2, scale, output_dir):
    breakdown = benchmark(
        lambda: country_breakdown(study2.database, top_n=20, order_by="total")
    )

    lines = [
        f"measured at scale {scale}",
        "",
        render_country_table(breakdown),
        "",
        "paper (Table 7) top six (the five targeted countries + Turkey):",
    ]
    for row in STUDY2_COUNTRIES[:6]:
        lines.append(
            f"  {row.code:<3} proxied {row.proxied:>6,}  total {row.total:>10,}"
            f"  ({100 * row.rate:.2f}%)"
        )
    lines.append(
        f"  paper total: {STUDY2_TOTAL.proxied:,} / {STUDY2_TOTAL.total:,} "
        f"({100 * STUDY2_TOTAL.rate:.2f}%)"
    )
    emit(output_dir, "table7_study2_countries", "\n".join(lines))

    measured_by_code = {row.country: row for row in breakdown.rows}
    # Shape: China leads volume with an exceptionally low rate; all
    # five targeted countries in the top six; overall rate ≈ 0.41%.
    assert breakdown.rows[0].country == "CN"
    assert measured_by_code["CN"].percent < 0.10
    top6 = {row.country for row in breakdown.rows[:6]}
    assert {"CN", "UA", "RU", "EG", "PK"} <= top6
    assert 0.30 < breakdown.total.percent < 0.55
