"""Paper-scale streaming ingest benchmark (the 10M-report run).

The paper's reporting server absorbed ~10.1M reports over two weeks;
this bench pushes the same volume through the spill-to-disk store in
one sitting and proves the on-disk path is lossless:

* **main ingest** — ``REPRO_BENCH_INGEST_REPORTS`` synthetic reports
  (default 10M; countries/sites drawn from the study-2 calibration
  tables, ~0.5% certificate mismatches, sprinkled failure rows)
  appended one report at a time through :class:`ReportStore`, with
  reports/sec, batch and segment counters recorded;
* **lossless check** — the live :class:`StreamingAggregator`, a cold
  ``scan_store`` of the segments, and an in-memory
  :class:`ReportDatabase` replay must all land on one byte-identical
  ``aggregate_signature()`` with zero torn segments;
* **spill-threshold sweep** — ingest throughput vs ``segment_bytes``
  (256KiB → 16MiB), ``REPRO_BENCH_INGEST_SWEEP`` reports per setting;
* **front end** — a multi-connection :class:`IngestLoop` run over the
  simulated network that must ride through 429 back-pressure
  (``deferred > 0``) without losing a report;
* **study parity** — a store-driven fast study vs the in-memory run,
  same seed, signatures compared;
* **compaction** — rewrite the main store's segments and re-scan.

Results land in ``benchmarks/output/BENCH_ingest.json`` (with the
span-level ``phase_profile``) plus a human-readable text twin.  Run
standalone (``PYTHONPATH=src python benchmarks/bench_ingest.py``) or
through pytest like the other benches.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
import sys
import tempfile
import time

import numpy as np

from repro.data.countries import country_table
from repro.data.sites import study2_probe_sites
from repro.httpmin.client import HttpClient  # noqa: F401  (re-export sanity)
from repro.measure.database import ReportDatabase
from repro.measure.ingest import IngestLoop, ReportSubmission
from repro.measure.records import CertSummary, MeasurementRecord
from repro.measure.server import ReportingServer
from repro.measure.store import ReportStore, scan_store
from repro.netsim.network import Network
from repro.obs.metrics import MetricsRegistry
from repro.study import StudyConfig, StudyRunner
from repro.x509.pem import pem_encode

try:  # pytest run (conftest on path) or standalone script
    from conftest import BENCH_SEED, OUTPUT_DIR, emit
except ImportError:  # pragma: no cover - standalone fallback
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    from conftest import BENCH_SEED, OUTPUT_DIR, emit


def ingest_reports() -> int:
    return int(os.environ.get("REPRO_BENCH_INGEST_REPORTS", "10000000"))


def sweep_reports() -> int:
    return int(os.environ.get("REPRO_BENCH_INGEST_SWEEP", "1000000"))


BLOCK = 250_000
MISMATCH_RATE = 0.005
SWEEP_SEGMENT_BYTES = (256 << 10, 1 << 20, 4 << 20, 16 << 20)
FAILURES_PER_BLOCK = (("probe_failed", 7), ("report_failed", 2))


# -- synthetic report stream ------------------------------------------


def _leaf_template(site_index: int, hostname: str) -> CertSummary:
    """A fabricated interception certificate for one probed site."""
    issuer = ("WebWatcher", "SuperFish, Inc.", "Sendori, Inc.", "IopFailZeroAccessCreate")[
        site_index % 4
    ]
    return CertSummary(
        subject_cn=hostname,
        subject_org=None,
        issuer_cn=issuer,
        issuer_org=issuer,
        issuer_ou=None,
        serial_number=0x1000 + site_index,
        key_bits=1024,
        signature_algorithm="sha1WithRSAEncryption",
        fingerprint=f"{site_index:02x}" * 32,
        public_key_fingerprint=f"{site_index ^ 0xFF:02x}" * 32,
    )


class ReportPlan:
    """Deterministic block-wise generator of the synthetic report mix."""

    def __init__(self, seed: int) -> None:
        self.rng = np.random.Generator(np.random.PCG64(seed))
        rows = [row for row in country_table(2) if row.total > 0][:40]
        self.countries = [row.code for row in rows]
        weights = np.array([row.total for row in rows], dtype=np.float64)
        self.weights = weights / weights.sum()
        sites = study2_probe_sites()
        self.hostnames = [site.hostname for site in sites]
        self.host_types = [site.host_type for site in sites]
        self.templates = [
            MeasurementRecord(
                study=2,
                campaign="bench",
                client_ip="0.0.0.0",
                country="??",
                hostname=site.hostname,
                host_type=site.host_type,
                mismatch=True,
                leaf=_leaf_template(index, site.hostname),
                chain=(_leaf_template(index, site.hostname),),
            )
            for index, site in enumerate(sites)
        ]
        self._ip_counter = 0

    def next_ip(self) -> str:
        self._ip_counter += 1
        k = self._ip_counter
        return f"203.{(k >> 16) & 255}.{(k >> 8) & 255}.{k & 255}"

    def block(self, size: int):
        """Draw one block: country idx, site idx, mismatch flags."""
        c_idx = self.rng.choice(len(self.countries), size=size, p=self.weights)
        s_idx = self.rng.integers(0, len(self.hostnames), size=size)
        mism = self.rng.random(size) < MISMATCH_RATE
        return c_idx.tolist(), s_idx.tolist(), mism.tolist()


def _drive(store: ReportStore, plan: ReportPlan, total: int, keep=None):
    """Push ``total`` reports through ``store`` one report at a time.

    Returns per-(country, site) matched totals (numpy-coalesced per
    block, so the verification replay does not pay the Python loop
    twice) and the failure totals.
    """
    from collections import Counter

    matched_totals: Counter = Counter()
    failures: Counter = Counter()
    countries = plan.countries
    hostnames = plan.hostnames
    host_types = plan.host_types
    templates = plan.templates
    replace = dataclasses.replace
    remaining = total
    while remaining > 0:
        size = min(BLOCK, remaining)
        remaining -= size
        c_idx, s_idx, mism = plan.block(size)
        for ci, si, flag in zip(c_idx, s_idx, mism):
            if flag:
                record = replace(
                    templates[si],
                    country=countries[ci],
                    client_ip=plan.next_ip(),
                )
                store.add_mismatch(record)
                if keep is not None:
                    keep.append(record)
            else:
                store.add_matched_bulk(countries[ci], host_types[si], hostnames[si], 1)
                matched_totals[(ci, si)] += 1
        for name, count in FAILURES_PER_BLOCK:
            store.add_failure(name, count)
            failures[name] += count
    return matched_totals, failures


# -- phases -----------------------------------------------------------


def bench_main_ingest(workdir: str, registry: MetricsRegistry) -> dict:
    total = ingest_reports()
    plan = ReportPlan(BENCH_SEED)
    store = ReportStore(os.path.join(workdir, "main"), registry)
    mismatches: list[MeasurementRecord] = []

    with registry.span("bench.ingest"):
        start = time.perf_counter()
        matched_totals, failures = _drive(store, plan, total, keep=mismatches)
        store.flush()
        ingest_s = time.perf_counter() - start
    store.close()

    # Replay the same stream into the plain in-memory database — the
    # reference the store-driven path must reproduce byte for byte.
    with registry.span("bench.verify"):
        db = ReportDatabase()
        for record in mismatches:
            db.add_mismatch(record)
        for (ci, si), count in matched_totals.items():
            db.add_matched_bulk(
                plan.countries[ci], plan.host_types[si], plan.hostnames[si], count
            )
        for name, count in failures.items():
            setattr(db.failures, name, count)

    with registry.span("bench.scan"):
        scan_registry = MetricsRegistry()
        start = time.perf_counter()
        scanned = scan_store(store.path, scan_registry)
        scan_s = time.perf_counter() - start
    torn = scan_registry.deterministic_snapshot()["counters"].get(
        "reports.rejected{reason=torn-segment}", 0
    )

    live_sig = store.aggregator.aggregate_signature()
    scan_sig = scanned.aggregate_signature()
    memory_sig = db.aggregate_signature()
    counters = registry.deterministic_snapshot()["counters"]
    assert live_sig == scan_sig == memory_sig, "on-disk path diverged from memory"
    assert torn == 0, "clean shutdown must leave zero torn segments"
    assert scanned.total_measurements == total

    return {
        "reports": total,
        "elapsed_s": round(ingest_s, 3),
        "reports_per_sec": round(total / ingest_s, 1),
        "mismatches": scanned.mismatch_count,
        "distinct_proxied_ips": scanned.distinct_proxied_ips(),
        "failure_rows": sum(failures.values()),
        "batches": counters["reports.batches"],
        "segments_written": counters["store.segments_written"],
        "bytes_written": counters["store.bytes_written"],
        "scan_elapsed_s": round(scan_s, 3),
        "torn_segments": torn,
        "aggregate_signature": live_sig,
        "signatures_equal": True,
    }


def bench_sweep(workdir: str) -> list[dict]:
    """Ingest throughput vs the segment rotation threshold."""
    total = sweep_reports()
    rows = []
    for segment_bytes in SWEEP_SEGMENT_BYTES:
        registry = MetricsRegistry()
        plan = ReportPlan(BENCH_SEED + 1)
        path = os.path.join(workdir, f"sweep-{segment_bytes}")
        store = ReportStore(path, registry, segment_bytes=segment_bytes)
        start = time.perf_counter()
        _drive(store, plan, total)
        store.close()
        elapsed = time.perf_counter() - start
        counters = registry.deterministic_snapshot()["counters"]
        rows.append(
            {
                "segment_bytes": segment_bytes,
                "reports": total,
                "reports_per_sec": round(total / elapsed, 1),
                "segments_written": counters["store.segments_written"],
                "bytes_written": counters["store.bytes_written"],
            }
        )
        shutil.rmtree(path)
    # Same stream, different geometry: every sweep setting must agree
    # on the bytes that matter (the rows), only the file count moves.
    assert len({row["bytes_written"] for row in rows}) == 1
    return rows


def bench_frontend(workdir: str) -> dict:
    """The netsim ingest front end under deliberate back-pressure."""
    from repro.crypto.keystore import KeyStore
    from repro.x509.ca import CertificateAuthority, SelfSignedParams
    from repro.x509.model import Name, SubjectPublicKeyInfo

    keystore = KeyStore(seed=BENCH_SEED)
    root = CertificateAuthority.self_signed(
        SelfSignedParams(
            subject=Name.build(common_name="Bench Root CA", organization="Bench"),
            key=keystore.key("bench-root", 512),
        )
    )
    leaf_key = keystore.key("bench-collector", 512)
    leaf = root.issue(
        Name.build(common_name="collector.test", organization="BYU"),
        SubjectPublicKeyInfo(leaf_key.n, leaf_key.e),
        dns_names=["collector.test"],
    )
    chain = [leaf, root.certificate]
    body = "".join(pem_encode(cert.encode()) for cert in chain).encode()

    registry = MetricsRegistry()
    store = ReportStore(
        os.path.join(workdir, "frontend"),
        registry,
        batch_rows=32,
        max_pending=16,
        auto_flush=False,
    )
    server = ReportingServer(None, None, study=1, registry=registry, store=store)
    server.expect("collector.test", leaf.fingerprint(), "Authors'")
    network = Network()
    network.add_host("collector.test").listen(80, server.http.factory)
    loop = IngestLoop(
        "collector.test",
        store=store,
        registry=registry,
        max_connections=32,
        flush_every=64,
    )
    submissions = 300
    for index in range(submissions):
        client = network.add_host(
            f"client-{index}.test", ip=f"10.20.{index // 250}.{index % 250}"
        )
        loop.submit(
            ReportSubmission(client=client, hostname="collector.test", body=body)
        )
    start = time.perf_counter()
    stats = loop.run()
    store.close()
    elapsed = time.perf_counter() - start
    counters = registry.deterministic_snapshot()["counters"]
    deferred = counters.get("ingest.deferred", 0)
    assert stats["delivered"] == submissions
    assert stats["failed"] == 0
    assert deferred > 0, "bench must exercise the 429 back-pressure path"
    assert scan_store(store.path).total_measurements == submissions
    return {
        "submissions": submissions,
        "delivered": stats["delivered"],
        "reports_per_sec": round(submissions / elapsed, 1),
        "loop_ticks": stats["ticks"],
        "peak_connections": stats["peak_active"],
        "deferred_429": deferred,
        "backpressure_events": counters["store.backpressure_events"],
    }


def bench_study_parity(workdir: str) -> dict:
    """A store-driven fast study must equal the in-memory run."""
    seed, scale = 7, 0.002
    start = time.perf_counter()
    memory = StudyRunner(
        StudyConfig(study=2, seed=seed, scale=scale, mode="fast")
    ).run()
    memory_s = time.perf_counter() - start
    store_dir = os.path.join(workdir, "study")
    start = time.perf_counter()
    StudyRunner(
        StudyConfig(
            study=2, seed=seed, scale=scale, mode="fast", report_store=store_dir
        )
    ).run()
    streamed = scan_store(store_dir)
    store_s = time.perf_counter() - start
    assert streamed.aggregate_signature() == memory.database.aggregate_signature()
    return {
        "seed": seed,
        "scale": scale,
        "measurements": streamed.total_measurements,
        "memory_wall_s": round(memory_s, 3),
        "store_wall_s": round(store_s, 3),
        "signatures_equal": True,
    }


def bench_compaction(workdir: str, registry: MetricsRegistry, main_sig: str) -> dict:
    store = ReportStore(os.path.join(workdir, "main"), registry)
    with registry.span("bench.compact"):
        start = time.perf_counter()
        stats = store.compact()
        elapsed = time.perf_counter() - start
    store.close()
    rescanned = scan_store(store.path)
    assert rescanned.aggregate_signature() == main_sig
    return {
        "elapsed_s": round(elapsed, 3),
        "rows_before": stats["rows_before"],
        "rows_after": stats["rows_after"],
        "segments_after": len(store.segments.segment_paths()),
        "signature_stable": True,
    }


# -- harness ----------------------------------------------------------


def run_ingest_bench() -> dict:
    workdir = tempfile.mkdtemp(prefix="bench-ingest-")
    registry = MetricsRegistry()
    try:
        main = bench_main_ingest(workdir, registry)
        compaction = bench_compaction(
            workdir, registry, main["aggregate_signature"]
        )
        sweep = bench_sweep(workdir)
        frontend = bench_frontend(workdir)
        study = bench_study_parity(workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return {
        "seed": BENCH_SEED,
        "hardware": {"cpu_count": os.cpu_count()},
        "ingest": main,
        "compaction": compaction,
        "segment_bytes_sweep": sweep,
        "frontend": frontend,
        "study_parity": study,
        "phase_profile": registry.timing_profile(),
    }


def _render(results: dict) -> str:
    ingest = results["ingest"]
    lines = [
        "Paper-scale streaming ingest (BENCH_ingest)",
        "=" * 46,
        f"reports ingested    {ingest['reports']:>12,}",
        f"wall time           {ingest['elapsed_s']:>12,.1f} s",
        f"throughput          {ingest['reports_per_sec']:>12,.0f} reports/s",
        f"mismatch records    {ingest['mismatches']:>12,}",
        f"batches / segments  {ingest['batches']:>7,} / {ingest['segments_written']:,}",
        f"bytes written       {ingest['bytes_written']:>12,}",
        f"cold scan           {ingest['scan_elapsed_s']:>12,.1f} s",
        f"torn segments       {ingest['torn_segments']:>12}",
        "",
        "segment_bytes sweep:",
    ]
    for row in results["segment_bytes_sweep"]:
        lines.append(
            f"  {row['segment_bytes'] >> 10:>6} KiB  "
            f"{row['reports_per_sec']:>12,.0f} reports/s  "
            f"{row['segments_written']:>5} segments"
        )
    frontend = results["frontend"]
    lines += [
        "",
        f"front end: {frontend['delivered']} delivered over "
        f"{frontend['peak_connections']} connections, "
        f"{frontend['deferred_429']} deferred by 429 back-pressure",
        f"study parity: store-driven run reproduces the in-memory "
        f"signature over {results['study_parity']['measurements']:,} measurements",
        f"compaction: {results['compaction']['rows_before']:,} -> "
        f"{results['compaction']['rows_after']:,} rows, signature stable",
    ]
    return "\n".join(lines)


def _emit_results(output_dir, results: dict) -> None:
    payload = json.dumps(results, indent=2)
    (output_dir / "BENCH_ingest.json").write_text(payload + "\n", encoding="utf-8")
    emit(output_dir, "ingest", _render(results))


def test_ingest(output_dir):
    results = run_ingest_bench()
    _emit_results(output_dir, results)
    assert results["ingest"]["signatures_equal"]
    assert results["ingest"]["torn_segments"] == 0
    assert results["frontend"]["deferred_429"] > 0
    assert results["study_parity"]["signatures_equal"]
    assert "bench.ingest" in results["phase_profile"]
    assert any("ingest.flush" in path for path in results["phase_profile"])


if __name__ == "__main__":
    OUTPUT_DIR.mkdir(exist_ok=True)
    ingest_results = run_ingest_bench()
    _emit_results(OUTPUT_DIR, ingest_results)
