"""Table 8 — proxied connection breakdown by host type."""

from conftest import emit

from repro.analysis import host_type_table
from repro.data.sites import TABLE8_CONNECTIONS, TABLE8_PROXIED
from repro.reporting import render_host_type_table


def test_table8_host_types(benchmark, study2, scale, output_dir):
    rows = benchmark(lambda: host_type_table(study2.database))

    lines = [
        f"measured at scale {scale}",
        "",
        render_host_type_table(rows),
        "",
        "paper (Table 8):",
    ]
    for host_type, connections in TABLE8_CONNECTIONS.items():
        proxied = TABLE8_PROXIED[host_type]
        lines.append(
            f"  {host_type:<13} {connections:>10,} connections, "
            f"{proxied:>6,} proxied ({100 * proxied / connections:.2f}%)"
        )
    rates = [row.percent_proxied for row in rows if row.connections > 0]
    lines.append(
        f"\nmeasured rate spread across host types: "
        f"{max(rates) - min(rates):.3f} percentage points "
        "(paper: 0.01pp — no evidence of blacklisting)"
    )
    emit(output_dir, "table8_host_types", "\n".join(lines))

    # Shape: every host type measured; rates statistically identical.
    assert len(rates) == 4
    assert max(rates) - min(rates) < 0.15
    # Volume ordering follows the paper: Popular > Porn > Authors' > Business.
    volumes = {row.host_type: row.connections for row in rows}
    assert volumes["Popular"] > volumes["Pornographic"] > volumes["Authors'"]
    assert volumes["Authors'"] > volumes["Business"]
