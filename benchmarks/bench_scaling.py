"""N4 — process-sharding & crypto/DER hot-path scaling benchmark.

Measures the four levers this repo pulls to run "as fast as the
hardware allows":

* **fast-mode study scaling** — wall time and measurement throughput
  of a fast study at ``workers`` ∈ {1, 2, 4} work-stolen sub-shards;
* **key-vault amortisation** — cold (generate + persist) vs warm
  (disk-load) key material, and warm-vault 4-worker vs 1-worker study
  wall time, with RSA generation counts asserted to hit zero;
* **audit battery scaling** — full-catalog adversarial battery wall
  time at ``workers`` ∈ {1, 2, 4} (process executor beyond 1);
* **hot-path micro-optimisations** — the exact per-operation costs
  removed by CRT-constant caching, the DigestInfo prefix cache and
  certificate DER/fingerprint memoisation, measured against faithful
  copies of the pre-optimisation code, plus an end-to-end single
  process legacy-vs-optimised study comparison.

Results land in ``benchmarks/output/BENCH_scaling.json`` (machine
readable) and a human-readable text twin.  Process-pool speedups are
bounded by the cores the host grants — ``hardware.cpu_count`` and a
``hardware.hardware_bound`` flag (with a stderr warning) are recorded
alongside so the numbers can be read in context.

Run standalone (``PYTHONPATH=src python benchmarks/bench_scaling.py``)
or through pytest like the other benches.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import shutil
import sys
import tempfile
import time
from contextlib import contextmanager

import numpy as np

from repro.crypto.hashes import hash_by_name
from repro.crypto.keystore import KeyStore
from repro.crypto import rsa
from repro.data import products as product_data
from repro.measure.records import CertSummary, MeasurementRecord
from repro.study import StudyConfig, StudyRunner
from repro.util import stable_hash
from repro.x509.ca import CertificateAuthority, SelfSignedParams
from repro.x509.model import Name

try:  # pytest run (conftest on path) or standalone script
    from conftest import BENCH_SEED, OUTPUT_DIR, bench_scale, emit
except ImportError:  # pragma: no cover - standalone fallback
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    from conftest import BENCH_SEED, OUTPUT_DIR, bench_scale, emit

WORKER_COUNTS = (1, 2, 4)


# -- faithful copies of the pre-optimisation hot paths -----------------


def _legacy_crt_power(message: int, key) -> int:
    """The seed's ``_crt_power``: CRT constants recomputed per call."""
    dp = key.d % (key.p - 1)
    dq = key.d % (key.q - 1)
    q_inv = pow(key.q, -1, key.p)
    m1 = pow(message % key.p, dp, key.p)
    m2 = pow(message % key.q, dq, key.q)
    h = (q_inv * (m1 - m2)) % key.p
    return m2 + h * key.q


def _legacy_digest_info(hash_alg, data: bytes) -> bytes:
    """The seed's ``_digest_info``: full DER built per signature."""
    from repro.asn1.types import Null, ObjectIdentifier, OctetString, Sequence

    algorithm = Sequence([ObjectIdentifier(hash_alg.digest_oid), Null()])
    return Sequence([algorithm, OctetString(hash_alg.digest(data))]).encode()


def _legacy_encode(certificate) -> bytes:
    if certificate.raw:
        return certificate.raw
    return certificate.to_asn1().encode()


def _legacy_fingerprint(certificate) -> str:
    return hashlib.sha256(_legacy_encode(certificate)).hexdigest()


@contextmanager
def deoptimised():
    """Swap the memoised/cached hot paths for their seed-era copies."""
    from repro.x509.model import Certificate

    saved = (
        rsa._crt_power,
        rsa._digest_info,
        Certificate.encode,
        Certificate.fingerprint,
    )
    rsa._crt_power = _legacy_crt_power
    rsa._digest_info = _legacy_digest_info
    Certificate.encode = _legacy_encode
    Certificate.fingerprint = _legacy_fingerprint
    try:
        yield
    finally:
        (
            rsa._crt_power,
            rsa._digest_info,
            Certificate.encode,
            Certificate.fingerprint,
        ) = saved


class LegacyFastRunner(StudyRunner):
    """The seed's scalar (pre-sharding, pre-vectorisation) fast mode."""

    def _run_fast(self, result) -> None:
        config = self.config
        population = result.population
        database = result.database
        np_rng = np.random.default_rng(stable_hash(config.seed, "fast"))
        rng = random.Random(stable_hash(config.seed, "fast-records"))

        n_sessions = self.total_sessions()
        plans = population.plans
        weights = np.array([plan.measurement_weight for plan in plans])
        session_counts = np_rng.multinomial(n_sessions, weights / weights.sum())

        site_success = {
            site.hostname: self.site_success_probability(site) for site in self.sites
        }
        for plan, n_country in zip(plans, session_counts):
            if n_country == 0:
                continue
            database.failures.sessions_started += int(n_country)
            result.sessions_run += int(n_country)
            n_proxied = int(np_rng.binomial(n_country, plan.proxy_rate))
            n_clean = int(n_country) - n_proxied
            for site in self.sites:
                count = int(np_rng.binomial(n_clean, site_success[site.hostname]))
                database.add_matched_bulk(
                    plan.code, site.host_type, site.hostname, count
                )
            if n_proxied:
                self._legacy_proxied_sessions(
                    result, plan.code, n_proxied, np_rng, rng, site_success
                )

    def _legacy_proxied_sessions(
        self, result, country, n_proxied, np_rng, rng, site_success
    ) -> None:
        population = result.population
        specs = product_data.catalog()
        shares = np.array(
            [population.expected_product_share(spec.key, country) for spec in specs]
        )
        if shares.sum() == 0:
            return
        product_counts = np_rng.multinomial(n_proxied, shares / shares.sum())
        plan = population.plan(country)
        campaign = self.campaign_for(country)
        for spec, count in zip(specs, product_counts):
            for _ in range(int(count)):
                client_index = rng.randrange(plan.pool_size)
                ip = population.client_ip(country, client_index, spec.key)
                bucket = client_index % product_data.NUM_CLIENT_BUCKETS
                for site in self.sites:
                    if rng.random() >= site_success[site.hostname]:
                        continue
                    self._legacy_record(
                        result, spec, country, campaign, ip, bucket, site
                    )

    def _legacy_record(self, result, spec, country, campaign, ip, bucket, site):
        database = result.database
        profile = spec.profile
        if profile.is_whitelisted(site.hostname):
            database.add_matched_bulk(country, site.host_type, site.hostname, 1)
            return
        upstream_leaf = self.pki.leaf_for(site.hostname)
        forged = self.forger.forge(
            profile,
            upstream_leaf,
            site.hostname,
            site_ip=self.site_ips[site.hostname],
            client_bucket=bucket,
        )
        database.add_mismatch(
            MeasurementRecord(
                study=self.config.study,
                campaign=campaign,
                client_ip=ip,
                country=country,
                hostname=site.hostname,
                host_type=site.host_type,
                mismatch=True,
                leaf=CertSummary.from_certificate(forged.leaf),
                chain=tuple(CertSummary.from_certificate(c) for c in forged.ca_chain),
                via="fast",
                product_key=spec.key,
            )
        )


# -- micro benchmarks ---------------------------------------------------


def _ops_per_second(fn, *, min_ops: int = 20, min_seconds: float = 0.4) -> float:
    ops = 0
    start = time.perf_counter()
    while ops < min_ops or time.perf_counter() - start < min_seconds:
        fn()
        ops += 1
    return ops / (time.perf_counter() - start)


def bench_hotpath() -> dict:
    key = KeyStore(seed=BENCH_SEED).key("bench-scaling", 1024)
    alg = hash_by_name("sha256")
    payload = b"scaling-bench-tbs" * 20

    sign_now = _ops_per_second(lambda: rsa.pkcs1_sign(key, alg, payload))
    with deoptimised():
        sign_before = _ops_per_second(lambda: rsa.pkcs1_sign(key, alg, payload))

    ca = CertificateAuthority.self_signed(
        SelfSignedParams(
            subject=Name.build(common_name="Scaling Bench CA"),
            key=KeyStore(seed=BENCH_SEED).key("bench-scaling-ca", 512),
        )
    )
    cert = ca.certificate
    fingerprint_now = _ops_per_second(cert.fingerprint, min_ops=1000)
    fingerprint_before = _ops_per_second(
        lambda: _legacy_fingerprint(cert), min_ops=1000
    )

    digest_now = _ops_per_second(
        lambda: rsa._digest_info(alg, payload), min_ops=1000
    )
    digest_before = _ops_per_second(
        lambda: _legacy_digest_info(alg, payload), min_ops=1000
    )

    return {
        "pkcs1_sign_1024_ops_per_s": {
            "optimised": round(sign_now, 1),
            "seed_baseline": round(sign_before, 1),
            "speedup": round(sign_now / sign_before, 3),
        },
        "certificate_fingerprint_ops_per_s": {
            "optimised": round(fingerprint_now, 1),
            "seed_baseline": round(fingerprint_before, 1),
            "speedup": round(fingerprint_now / fingerprint_before, 3),
        },
        "digest_info_ops_per_s": {
            "optimised": round(digest_now, 1),
            "seed_baseline": round(digest_before, 1),
            "speedup": round(digest_now / digest_before, 3),
        },
    }


# -- end-to-end sections ------------------------------------------------


def _timed_run(runner, repeats: int = 1) -> tuple[float, int]:
    """Best-of-``repeats`` wall time (warm passes are short and noisy)."""
    best = float("inf")
    measurements = 0
    for _ in range(repeats):
        start = time.perf_counter()
        result = runner.run()
        best = min(best, time.perf_counter() - start)
        measurements = result.database.total_measurements
    return best, measurements


def _annotate_parallelism(per_workers: dict, measured_parallelism: float) -> None:
    """Fold hardware-normalised scaling metrics into per-worker rows.

    ``speedup_vs_1`` is the raw wall-time ratio; dividing it by the
    *achievable* parallelism — ``min(workers, measured_parallelism)``,
    not the nominal worker count — yields an efficiency that reads the
    same on a quota-bound CI container and a bare-metal box: 1.0 means
    the pool extracted everything the host actually grants.
    """
    base = per_workers["1"]["wall_time_s"]
    for workers in WORKER_COUNTS:
        row = per_workers[str(workers)]
        speedup = base / row["wall_time_s"] if row["wall_time_s"] else 0.0
        achievable = max(1.0, min(workers, measured_parallelism))
        row["speedup_vs_1"] = round(speedup, 3)
        row["hardware_normalised_efficiency"] = round(speedup / achievable, 3)


def bench_study(scale: float, measured_parallelism: float) -> dict:
    per_workers = {}
    warm_runner = None
    phase_profile: dict = {}
    for workers in WORKER_COUNTS:
        config = StudyConfig(
            study=1, seed=BENCH_SEED, scale=scale, mode="fast", workers=workers
        )
        runner = StudyRunner(config)
        start = time.perf_counter()
        result = runner.run()
        wall = time.perf_counter() - start
        if workers == 1:
            warm_runner = runner
            phase_profile = result.metrics.get("timing", {}).get("spans", {})
        per_workers[str(workers)] = {
            "wall_time_s": round(wall, 3),
            "measurements": result.database.total_measurements,
            "throughput_per_s": round(result.database.total_measurements / wall, 1),
            "aggregate_signature": result.database.aggregate_signature(),
        }

    # Single-process legacy baseline: the seed's scalar loop plus the
    # uncached crypto/DER paths, on identical inputs.  Cold runs pay
    # the (shared, untouched-by-this-comparison) RSA key generation;
    # the warm second run of each runner measures the steady-state
    # measurement machinery itself — the regime paper-scale runs live
    # in once the per-product CAs exist.
    legacy_runner = LegacyFastRunner(
        StudyConfig(study=1, seed=BENCH_SEED, scale=scale, mode="fast")
    )
    with deoptimised():
        legacy_cold_wall, legacy_meas = _timed_run(legacy_runner)
        legacy_warm_wall, legacy_warm_meas = _timed_run(legacy_runner, repeats=3)
    warm_wall, warm_meas = _timed_run(warm_runner, repeats=3)

    _annotate_parallelism(per_workers, measured_parallelism)
    optimised = per_workers["1"]
    signatures = {entry["aggregate_signature"] for entry in per_workers.values()}
    steady_optimised = warm_meas / warm_wall
    steady_legacy = legacy_warm_meas / legacy_warm_wall
    return {
        "workers": per_workers,
        "phase_profile": phase_profile,
        "deterministic_across_workers": len(signatures) == 1,
        "single_process_baseline_cold": {
            "wall_time_s": round(legacy_cold_wall, 3),
            "measurements": legacy_meas,
            "throughput_per_s": round(legacy_meas / legacy_cold_wall, 1),
        },
        "single_process_speedup_cold": round(
            optimised["throughput_per_s"] / (legacy_meas / legacy_cold_wall), 3
        ),
        "steady_state": {
            "optimised_throughput_per_s": round(steady_optimised, 1),
            "baseline_throughput_per_s": round(steady_legacy, 1),
            "optimised_wall_time_s": round(warm_wall, 3),
            "baseline_wall_time_s": round(legacy_warm_wall, 3),
        },
        "single_process_speedup": round(steady_optimised / steady_legacy, 3),
    }


def bench_audit(measured_parallelism: float) -> dict:
    from repro.audit import audit_catalog
    from repro.obs import MetricsRegistry

    per_workers = {}
    reports = {}
    phase_profile: dict = {}
    for workers in WORKER_COUNTS:
        executor = "process" if workers > 1 else "thread"
        obs = MetricsRegistry()
        start = time.perf_counter()
        report = audit_catalog(
            seed=BENCH_SEED, workers=workers, executor=executor, registry=obs
        )
        wall = time.perf_counter() - start
        reports[workers] = report
        if workers == 1:
            phase_profile = obs.timing_profile()
        per_workers[str(workers)] = {
            "executor": executor,
            "wall_time_s": round(wall, 3),
            "products_per_second": round(len(report.scorecards) / wall, 3),
        }
    _annotate_parallelism(per_workers, measured_parallelism)
    grades = {w: r.grade_histogram() for w, r in reports.items()}
    return {
        "workers": per_workers,
        "phase_profile": phase_profile,
        "speedup_4_workers_vs_1": round(
            per_workers["1"]["wall_time_s"] / per_workers["4"]["wall_time_s"], 3
        ),
        "deterministic_across_workers": all(
            reports[w].scorecards == reports[1].scorecards for w in WORKER_COUNTS
        ),
        "grades": grades[1],
    }


def bench_vault(scale: float) -> dict:
    """Vault-cold vs vault-warm: keygen amortisation across runs/workers.

    Cold = empty vault, the parent pays every RSA generation exactly
    once (and persists it).  Warm = a second, fresh runner against the
    same vault: every key loads from disk, generation count must be 0.
    """
    tmp = tempfile.mkdtemp(prefix="bench-scaling-vault-")
    try:
        vault_dir = os.path.join(tmp, "vault")

        def runner_for(workers: int) -> StudyRunner:
            return StudyRunner(
                StudyConfig(
                    study=1,
                    seed=BENCH_SEED,
                    scale=scale,
                    mode="fast",
                    workers=workers,
                    vault=vault_dir,
                )
            )

        # Cold keygen: the vault is empty, warm_keys generates it all.
        start = time.perf_counter()
        cold_runner = runner_for(1)
        cold_runner.warm_keys()
        cold_wall = time.perf_counter() - start
        keys_generated_cold = cold_runner.keystore.keys_generated

        # Warm load: a fresh runner against the now-full vault.
        start = time.perf_counter()
        warm_runner = runner_for(1)
        warm_runner.warm_keys()
        warm_wall = time.perf_counter() - start
        keys_generated_warm = warm_runner.keystore.keys_generated

        rows = {}
        for workers, label in ((4, "cold"), (4, "warm"), (1, "warm_w1")):
            if label == "cold":
                shutil.rmtree(vault_dir, ignore_errors=True)
            runner = runner_for(workers)
            start = time.perf_counter()
            result = runner.run()
            wall = time.perf_counter() - start
            rows[label] = {
                "workers": workers,
                "wall_time_s": round(wall, 3),
                "measurements": result.database.total_measurements,
                "aggregate_signature": result.database.aggregate_signature(),
                "parent_keys_generated": result.notes["keys_generated"],
                "worker_keys_generated": result.notes.get("worker_keys_generated"),
            }
        return {
            "warm_keys_cold_s": round(cold_wall, 3),
            "warm_keys_warm_s": round(warm_wall, 4),
            "vault_load_speedup": round(cold_wall / warm_wall, 1),
            "keys_generated_cold": keys_generated_cold,
            "keys_generated_warm": keys_generated_warm,
            "vault_entries": len(warm_runner.keystore.vault),
            "study_runs": rows,
            "deterministic_across_cold_warm_and_workers": len(
                {row["aggregate_signature"] for row in rows.values()}
            )
            == 1,
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def _burn(_):
    x = 0
    for i in range(5_000_000):
        x += i
    return x


def _measured_parallelism(workers: int = 4) -> float:
    """How many units of fixed CPU work the host really runs at once.

    CPU quotas (containers) often grant less than ``os.cpu_count()``
    suggests; the process-pool speedups below are bounded by this
    number, so it is recorded next to them.
    """
    from concurrent.futures import ProcessPoolExecutor

    start = time.perf_counter()
    _burn(0)
    unit = time.perf_counter() - start
    start = time.perf_counter()
    with ProcessPoolExecutor(max_workers=workers) as pool:
        list(pool.map(_burn, range(workers)))
    wall = time.perf_counter() - start
    return workers * unit / wall


def run_scaling(scale: float) -> dict:
    workers = WORKER_COUNTS[-1]
    measured = round(_measured_parallelism(workers), 2)
    # The host grants fewer cores than the pool asks for: process-pool
    # rows then *cannot* beat workers=1 and must be read as bounded by
    # hardware, not by the scheduler or the vault.
    hardware_bound = measured < workers - 0.5
    if hardware_bound:
        print(
            f"warning: measured parallelism {measured} < {workers} workers — "
            "process-pool rows are hardware-bound on this host "
            "(CPU quota/core count), not scheduler-bound",
            file=sys.stderr,
        )
    return {
        "seed": BENCH_SEED,
        "scale": scale,
        "hardware": {
            "cpu_count": os.cpu_count(),
            "schedulable_cpus": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else os.cpu_count(),
            "measured_parallelism_4_procs": measured,
            "hardware_bound": hardware_bound,
        },
        "hotpath": bench_hotpath(),
        "study_fast_mode": bench_study(scale, measured),
        "key_vault": bench_vault(scale),
        "audit_battery": bench_audit(measured),
    }


def _emit_results(output_dir, results: dict) -> None:
    payload = json.dumps(results, indent=2)
    (output_dir / "BENCH_scaling.json").write_text(payload + "\n", encoding="utf-8")
    emit(output_dir, "scaling", payload)


def test_scaling(output_dir):
    results = run_scaling(bench_scale())
    _emit_results(output_dir, results)

    assert results["study_fast_mode"]["deterministic_across_workers"]
    assert results["audit_battery"]["deterministic_across_workers"]
    # Every per-worker row carries the hardware-normalised metric, and
    # the workers=1 base row is exactly its own baseline.
    for section in ("study_fast_mode", "audit_battery"):
        for row in results[section]["workers"].values():
            assert "speedup_vs_1" in row
            assert "hardware_normalised_efficiency" in row
        assert results[section]["workers"]["1"]["speedup_vs_1"] == 1.0
        assert results[section]["workers"]["1"]["hardware_normalised_efficiency"] == 1.0
    # The embedded phase profiles must cover the phases the runner and
    # harness claim to trace.
    assert "study.run/study.plan" in results["study_fast_mode"]["phase_profile"]
    assert any(
        path.startswith("audit.product")
        for path in results["audit_battery"]["phase_profile"]
    )
    # The memoisation work must be a clear win on any hardware.  (The
    # CRT sign speedup is real but small — recorded, not asserted.)
    assert results["hotpath"]["certificate_fingerprint_ops_per_s"]["speedup"] > 1.0
    assert results["study_fast_mode"]["single_process_speedup"] > 1.5

    # The vault must be invisible to the data and fatal to the keygen
    # bill: warm runs generate zero keys, and vault on/off (plus
    # cold/warm and any worker count) agree on every byte.
    vault = results["key_vault"]
    assert vault["keys_generated_warm"] == 0
    assert vault["study_runs"]["warm"]["parent_keys_generated"] == 0
    assert vault["study_runs"]["warm"]["worker_keys_generated"] == 0
    assert vault["deterministic_across_cold_warm_and_workers"]
    assert (
        vault["study_runs"]["warm"]["aggregate_signature"]
        == results["study_fast_mode"]["workers"]["1"]["aggregate_signature"]
    )
    # On hardware that actually grants the cores, a warm-vault 4-worker
    # run must beat single-process; on a quota-bound host the explicit
    # hardware_bound flag is the accepted explanation instead.
    if not results["hardware"]["hardware_bound"]:
        assert (
            vault["study_runs"]["warm"]["wall_time_s"]
            < results["study_fast_mode"]["workers"]["1"]["wall_time_s"]
        )


if __name__ == "__main__":
    OUTPUT_DIR.mkdir(exist_ok=True)
    scaling_results = run_scaling(bench_scale())
    _emit_results(OUTPUT_DIR, scaling_results)
