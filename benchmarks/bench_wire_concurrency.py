"""Wire-concurrency benchmark: sessions/s vs scheduler admission cap.

ISSUE 10's tentpole turned wire mode from one synchronous session at a
time into thousands of generator chains multiplexed on a cooperative
loop over the scheduled-delivery transport.  This bench sweeps the
admission cap (1 = the historical serial path, then 64 → 4096) over one
study-2 wire plan and records, per level:

* sessions executed and wall-clock sessions/s,
* loop ticks and the in-flight session high-water mark,
* whether ``aggregate_signature()`` and the deterministic metrics
  section match the serial baseline byte for byte (the refactor's bar —
  concurrency must buy throughput shape, never different bytes).

Scale is controlled by ``REPRO_BENCH_WIRE_SCALE`` (default 0.0008 ≈
2.4k planned sessions across ~1.3k distinct client chains, which is
what makes the ≥1000-concurrently-multiplexed-sessions claim
measurable);
``REPRO_BENCH_WIRE_LEVELS`` overrides the cap sweep (comma-separated).
Results land in ``benchmarks/output/BENCH_wire_concurrency.json`` plus
a human-readable text twin.  Run standalone (``PYTHONPATH=src python
benchmarks/bench_wire_concurrency.py``) or through pytest like the
other benches.
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.study import StudyConfig, StudyRunner

try:  # pytest run (conftest on path) or standalone script
    from conftest import BENCH_SEED, OUTPUT_DIR, emit
except ImportError:  # pragma: no cover - standalone fallback
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    from conftest import BENCH_SEED, OUTPUT_DIR, emit


def wire_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_WIRE_SCALE", "0.0008"))


def wire_levels() -> list[int]:
    raw = os.environ.get("REPRO_BENCH_WIRE_LEVELS", "1,64,256,1024,4096")
    return [int(part) for part in raw.split(",") if part.strip()]


def _run_level(concurrency: int, scale: float) -> dict:
    config = StudyConfig(
        study=2,
        seed=BENCH_SEED,
        scale=scale,
        mode="wire",
        wire_concurrency=concurrency,
    )
    runner = StudyRunner(config)
    start = time.perf_counter()
    result = runner.run()
    wall_s = time.perf_counter() - start
    process = result.metrics["process"]
    counters = process["counters"]
    gauges = process["gauges"]
    sessions = result.sessions_run
    return {
        "concurrency": concurrency,
        "sessions": sessions,
        "client_chains": len(result.notes["wire_client_hosts"]),
        "wall_s": round(wall_s, 3),
        "sessions_per_s": round(sessions / wall_s, 1) if wall_s else 0.0,
        "loop_ticks": counters.get("loop.ticks", 0),
        "queue_delivered": counters.get("wire.queue_delivered", 0),
        "queue_depth_peak": gauges.get("wire.queue_depth_peak", 0),
        "peak_inflight": gauges.get("wire.sessions_inflight", 0),
        "signature": result.database.aggregate_signature(),
        "deterministic": result.metrics["deterministic"],
    }


def run_wire_concurrency_bench() -> dict:
    scale = wire_scale()
    levels = wire_levels()
    rows = [_run_level(level, scale) for level in levels]
    baseline_signature = rows[0]["signature"]
    baseline_deterministic = rows[0]["deterministic"]
    for row in rows:
        row["signature_identical"] = row["signature"] == baseline_signature
        row["deterministic_identical"] = (
            row["deterministic"] == baseline_deterministic
        )
        # The full metrics section is compared, not shipped: the JSON
        # row keeps the verdict and the (short) signature only.
        del row["deterministic"]
    peak = max(row["peak_inflight"] for row in rows)
    return {
        "study": 2,
        "seed": BENCH_SEED,
        "scale": scale,
        "levels": levels,
        "rows": rows,
        "max_sessions_multiplexed": peak,
        "all_signatures_identical": all(r["signature_identical"] for r in rows),
        "all_deterministic_identical": all(
            r["deterministic_identical"] for r in rows
        ),
    }


def _render(results: dict) -> str:
    lines = [
        "Wire concurrency: scheduled delivery vs serial (BENCH_wire_concurrency)",
        "=" * 71,
        f"study 2, seed {results['seed']}, scale {results['scale']} "
        f"({results['rows'][0]['sessions']} sessions, "
        f"{results['rows'][0]['client_chains']} client chains)",
        "",
        f"{'cap':>6} {'sessions/s':>11} {'wall s':>8} {'ticks':>7} "
        f"{'inflight':>9} {'queue peak':>11} {'signature':>10}",
    ]
    for row in results["rows"]:
        lines.append(
            f"{row['concurrency']:>6} {row['sessions_per_s']:>11,.1f} "
            f"{row['wall_s']:>8.2f} {row['loop_ticks']:>7,} "
            f"{row['peak_inflight']:>9,} {row['queue_depth_peak']:>11,} "
            f"{'identical' if row['signature_identical'] else 'DIVERGED':>10}"
        )
    lines += [
        "",
        f"max sessions multiplexed at once: "
        f"{results['max_sessions_multiplexed']:,}",
        f"deterministic metrics: "
        f"{'identical at every cap' if results['all_deterministic_identical'] else 'DIVERGED'}",
    ]
    return "\n".join(lines)


def _emit_results(output_dir, results: dict) -> None:
    payload = json.dumps(results, indent=2)
    (output_dir / "BENCH_wire_concurrency.json").write_text(
        payload + "\n", encoding="utf-8"
    )
    emit(output_dir, "wire_concurrency", _render(results))


def test_wire_concurrency(output_dir):
    results = run_wire_concurrency_bench()
    _emit_results(output_dir, results)
    assert results["all_signatures_identical"]
    assert results["all_deterministic_identical"]
    if wire_scale() >= 0.0008 and max(wire_levels()) >= 1024:
        # The acceptance bar: >=1000 sessions genuinely multiplexed.
        assert results["max_sessions_multiplexed"] >= 1000


if __name__ == "__main__":
    OUTPUT_DIR.mkdir(exist_ok=True)
    bench_results = run_wire_concurrency_bench()
    _emit_results(OUTPUT_DIR, bench_results)
    if not bench_results["all_signatures_identical"]:
        sys.exit("FAIL: signatures diverged across concurrency levels")
