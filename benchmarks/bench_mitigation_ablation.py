"""A1 — §7 mitigation ablation: which defences catch which proxies."""

from conftest import emit

from repro.mitigation import evaluate_mitigations


def test_mitigation_ablation(benchmark, output_dir):
    evaluation = benchmark(lambda: evaluate_mitigations(seed=42))

    header = (
        f"{'scenario':<18} {'intercepted':<11} {'pinning':<20} "
        f"{'pin-strict':<11} {'notary':<15} {'dvcert':<14} {'ct':<10} disclosure"
    )
    lines = [header, "-" * len(header)]
    for outcome in evaluation.outcomes:
        lines.append(
            f"{outcome.scenario:<18} {str(outcome.intercepted):<11} "
            f"{outcome.pinning:<20} {outcome.pinning_strict:<11} "
            f"{outcome.notary:<15} {outcome.dvcert:<14} "
            f"{outcome.ct_monitor:<10} {outcome.disclosure}"
        )
    lines.extend(
        [
            "",
            "§7's implicit predictions, verified:",
            "  - Chrome-style pinning trusts locally installed roots, so every",
            "    root-injecting proxy (benign or malware) bypasses it;",
            "  - multi-path notaries and DVCert detect all MitM variants;",
            "  - Certificate Transparency flags the rogue *public* CA but is",
            "    blind to local-root proxies (their certs never reach a log);",
            "  - only a cooperating explicit proxy ever disclosed itself.",
        ]
    )
    emit(output_dir, "mitigation_ablation", "\n".join(lines))

    for scenario in ("benign-av", "malware", "chained-attack"):
        assert evaluation.by_scenario(scenario).pinning == "bypassed-local-root"
        assert evaluation.by_scenario(scenario).ct_monitor == "invisible"
    assert evaluation.by_scenario("rogue-ca").pinning == "violation"
    assert evaluation.by_scenario("rogue-ca").ct_monitor == "flagged"
    for scenario in ("benign-av", "malware", "rogue-ca", "chained-attack"):
        outcome = evaluation.by_scenario(scenario)
        assert outcome.notary == "mitm-suspected"
        assert outcome.dvcert == "mitm-detected"
    assert evaluation.by_scenario("clean").dvcert == "ok"
    assert evaluation.by_scenario("clean").ct_monitor == "clean"
