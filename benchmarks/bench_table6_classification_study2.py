"""Table 6 — classification of claimed issuer, second study."""

from conftest import emit

from repro.analysis import classification_table
from repro.proxy.profile import ProxyCategory
from repro.reporting import render_classification_table

PAPER_TABLE6 = {
    ProxyCategory.BUSINESS_PERSONAL_FIREWALL: 70.93,
    ProxyCategory.BUSINESS_FIREWALL: 2.43,
    ProxyCategory.PERSONAL_FIREWALL: 1.06,
    ProxyCategory.PARENTAL_CONTROL: 0.84,
    ProxyCategory.ORGANIZATION: 6.96,
    ProxyCategory.SCHOOL: 0.95,
    ProxyCategory.MALWARE: 5.06,
    ProxyCategory.UNKNOWN: 10.75,
    ProxyCategory.TELECOM: 0.88,
    ProxyCategory.CERTIFICATE_AUTHORITY: 0.13,
}


def test_table6_classification_study2(benchmark, study2, output_dir):
    rows = benchmark(lambda: classification_table(study2.database))

    lines = [render_classification_table(rows), "", "paper (Table 6):"]
    for category, percent in PAPER_TABLE6.items():
        lines.append(f"  {category.value:<28} {percent:>6.2f}%")
    measured = {row.category: row.percent for row in rows}
    shift = measured[ProxyCategory.UNKNOWN]
    lines.append(
        f"\nUnknown share: study 2 measured {shift:.2f}% "
        "(paper: 10.75%, up from 7.14% in study 1 — the targeted-country shift)"
    )
    emit(output_dir, "table6_classification_study2", "\n".join(lines))

    # Shape: firewalls ≈ 71%, Unknown clearly larger than study 1's
    # 7.14%, Malware lower than study 1's 8.65%, Telecom now non-zero.
    assert abs(measured[ProxyCategory.BUSINESS_PERSONAL_FIREWALL] - 70.93) < 8.0
    assert measured[ProxyCategory.UNKNOWN] > 8.0
    assert measured[ProxyCategory.MALWARE] < 8.0
    assert measured[ProxyCategory.TELECOM] > 0.3
