"""Figure 7 — world heat map of TLS-proxy prevalence by country."""

from conftest import emit

from repro.analysis import heatmap_series
from repro.reporting import render_heatmap


def test_fig7_heatmap(benchmark, study2, output_dir):
    series = benchmark(lambda: heatmap_series(study2.database))

    text = render_heatmap(series, columns=5)
    lines = [
        "Figure 7 reproduction: per-country proxy rate on the paper's",
        "0-12% palette (the paper paints these values onto a world map).",
        "",
        text,
    ]
    emit(output_dir, "fig7_heatmap", "\n".join(lines))

    # Shape: broad coverage, China cold, western countries warm.
    assert len(series) > 40  # paper: 228 countries/territories at full scale
    assert series.get("CN", 1.0) < 0.001
    assert series.get("US", 0.0) > 0.004
    # Everything within the paper's 0-12% scale.
    assert all(0.0 <= rate <= 0.12 for rate in series.values())
