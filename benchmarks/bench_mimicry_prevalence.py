"""N4 — mimicry-prevalence study throughput and result.

Times the server-leg mimicry survey over the entire product catalog
(the probe-only workload behind ``repro mimicry-prevalence``) and
emits the per-country detectable-from-client-side table for both
studies, alongside wall time and products-per-second so regressions
in the survey path show up next to regressions in the verdicts.
"""

import json
import time

from conftest import BENCH_SEED, emit

from repro.analysis.mimicry import mimicry_prevalence
from repro.audit import mimicry_catalog
from repro.obs import MetricsRegistry
from repro.reporting import render_mimicry_prevalence_table


def run_survey():
    obs = MetricsRegistry()
    start = time.perf_counter()
    survey = mimicry_catalog(seed=BENCH_SEED, workers=1, registry=obs)
    return survey, time.perf_counter() - start, obs


def test_mimicry_prevalence(benchmark, output_dir):
    survey, wall_time, obs = benchmark.pedantic(run_survey, rounds=1, iterations=1)

    products = len(survey.entries)
    detectable = [entry for entry in survey.entries if entry.detectable]
    prevalence = {
        study: mimicry_prevalence(survey, study=study) for study in (1, 2)
    }
    tables = "\n\n".join(
        f"== Study {study}: detectable-from-client-side rate by country ==\n"
        + render_mimicry_prevalence_table(result)
        for study, result in prevalence.items()
    )
    emit(output_dir, "mimicry_prevalence", tables)

    timing = {
        "seed": BENCH_SEED,
        "products_probed": products,
        "detectable_products": len(detectable),
        "survey_wall_time_s": round(wall_time, 3),
        "products_per_second": round(products / wall_time, 3),
        "detectable_share": {
            study: round(result.total.detectable_share, 4)
            for study, result in prevalence.items()
        },
        "phase_profile": obs.timing_profile(),
        "survey_counters": obs.snapshot()["deterministic"]["counters"],
    }
    payload = json.dumps(timing, indent=2)
    (output_dir / "BENCH_mimicry_prevalence.json").write_text(
        payload + "\n", encoding="utf-8"
    )
    print(f"\nBENCH_mimicry_prevalence.json\n{payload}")

    assert products >= 40  # the whole catalog, not a subset
    assert timing["products_per_second"] > 0
    assert timing["phase_profile"]["audit.mimicry"]["count"] == products
    # The server-leg mimic stays hidden; the bare stacks do not.
    by_key = survey.by_key()
    assert not by_key["bitdefender"].detectable
    assert by_key["kurupira"].detectable
    # Most of the catalog speaks a bare substitute stack: the overall
    # detectable share must be substantial in both studies.
    for study, result in prevalence.items():
        assert result.total.detectable_share > 0.5, (study, result.total)
