"""Chaos-layer benchmark: what does surviving faults cost?

Three measurements on top of the drill matrix's correctness gates:

* **matrix** — wall time and per-drill verdicts for the full
  ``repro chaos`` fault matrix (every wire/server/store-crash kind);
* **recovery overhead** — a ``REPRO_BENCH_CHAOS_OPS``-op delivery
  (default 200k) through a crash-heavy plan vs the same ops fault-free:
  ops/sec on both paths and the recovery multiplier, with the
  byte-identical signature re-proved at bench scale;
* **gate throughput** — the pure :class:`FaultGate` decision rate
  (ops/sec through ``attempt``) under a mixed transient plan, since
  every fast-mode op pays this check when a plan is active.

Results land in ``benchmarks/output/BENCH_chaos.json`` plus a
human-readable text twin.  Run standalone (``PYTHONPATH=src python
benchmarks/bench_chaos.py``) or through pytest like the other benches.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

from repro.faults.chaos import _synthetic_database, run_chaos_matrix
from repro.faults.plan import FaultPlan
from repro.faults.recovery import FaultGate, ResilientStoreWriter, database_ops
from repro.measure.store import ReportStore, scan_store
from repro.obs.metrics import MetricsRegistry

try:  # pytest run (conftest on path) or standalone script
    from conftest import BENCH_SEED, OUTPUT_DIR, emit
except ImportError:  # pragma: no cover - standalone fallback
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    from conftest import BENCH_SEED, OUTPUT_DIR, emit


def chaos_ops() -> int:
    return int(os.environ.get("REPRO_BENCH_CHAOS_OPS", "200000"))


def recovery_plan(ops: int) -> str:
    # ~ops/4096 flushes happen, so scale the crash cadences with the op
    # count: a handful of crashes fire whether REPRO_BENCH_CHAOS_OPS is
    # 20k or 10M, keeping the recoveries>0 gate meaningful at any scale.
    flushes = max(2, ops // 4096)
    return (
        "reset=0.0005,429=0.0005,"
        f"crash-flush={max(1, flushes // 3)},crash-rotate={max(1, flushes // 4)},"
        "segment-bytes=262144,batch-rows=4096"
    )


def _bench_matrix() -> dict:
    registry = MetricsRegistry()
    start = time.perf_counter()
    outcomes = run_chaos_matrix(seed=BENCH_SEED, reports=48, registry=registry)
    elapsed = time.perf_counter() - start
    return {
        "elapsed_s": round(elapsed, 3),
        "drills": len(outcomes),
        "all_invariants_hold": all(o.invariant_ok for o in outcomes),
        "all_recoverable_signatures_identical": all(
            o.signature_ok for o in outcomes if o.signature_ok is not None
        ),
        "recoveries": sum(o.recoveries for o in outcomes),
        "retries": sum(o.retries for o in outcomes),
        "per_drill": [
            {
                "name": o.name,
                "submitted": o.submitted,
                "delivered": o.delivered,
                "failed": o.failed,
                "recoveries": o.recoveries,
                "signature": {True: "identical", False: "diverged", None: "lossy"}[
                    o.signature_ok
                ],
            }
            for o in outcomes
        ],
    }


def _bench_recovery_overhead() -> dict:
    # ~n mismatch records + bulk counters, the same op mix the study
    # merge delivers.
    database = _synthetic_database(chaos_ops())
    ops = list(database_ops(database))
    reference = database.aggregate_signature()
    results: dict = {"ops": len(ops)}
    with tempfile.TemporaryDirectory(prefix="repro-bench-chaos-") as tmp:
        start = time.perf_counter()
        store = ReportStore(f"{tmp}/clean", batch_rows=4096)
        from repro.faults.recovery import apply_op

        for op in ops:
            apply_op(store, op)
        store.close()
        clean_s = time.perf_counter() - start

        plan = FaultPlan.parse(recovery_plan(len(ops)), seed=BENCH_SEED)
        registry = MetricsRegistry()
        writer = ResilientStoreWriter(f"{tmp}/chaos", plan, registry)
        start = time.perf_counter()
        stats = writer.deliver(ops)
        chaos_s = time.perf_counter() - start
        signature_ok = (
            scan_store(f"{tmp}/chaos").aggregate_signature() == reference
            and stats["failed"] == 0
        )
    results.update(
        clean_elapsed_s=round(clean_s, 3),
        clean_ops_per_sec=round(len(ops) / clean_s) if clean_s else 0,
        chaos_elapsed_s=round(chaos_s, 3),
        chaos_ops_per_sec=round(len(ops) / chaos_s) if chaos_s else 0,
        overhead_multiplier=round(chaos_s / clean_s, 2) if clean_s else 0.0,
        recoveries=stats["recoveries"],
        retries=stats["retries"],
        crashes=stats["crashes"],
        signature_identical=signature_ok,
    )
    return results


def _bench_gate_throughput() -> dict:
    plan = FaultPlan.parse("reset=0.001,429=0.001,drop=0.0002", seed=BENCH_SEED)
    gate = FaultGate(plan, MetricsRegistry())
    n = chaos_ops()
    start = time.perf_counter()
    passed = sum(1 for i in range(n) if gate.attempt(i))
    elapsed = time.perf_counter() - start
    return {
        "ops": n,
        "elapsed_s": round(elapsed, 3),
        "ops_per_sec": round(n / elapsed) if elapsed else 0,
        "passed": passed,
        "dropped": len(gate.dropped),
        "retries": gate.retries,
    }


def run_chaos_bench() -> dict:
    return {
        "matrix": _bench_matrix(),
        "recovery_overhead": _bench_recovery_overhead(),
        "gate_throughput": _bench_gate_throughput(),
    }


def _render(results: dict) -> str:
    matrix = results["matrix"]
    overhead = results["recovery_overhead"]
    gate = results["gate_throughput"]
    lines = [
        "Chaos layer: fault injection & recovery (BENCH_chaos)",
        "=" * 53,
        f"drill matrix        {matrix['drills']:>10} drills in "
        f"{matrix['elapsed_s']:.1f} s "
        f"({matrix['recoveries']} recoveries, {matrix['retries']} retries)",
        f"invariants          {'all hold' if matrix['all_invariants_hold'] else 'BROKEN':>10}",
        f"recoverable sigs    "
        f"{'identical' if matrix['all_recoverable_signatures_identical'] else 'DIVERGED':>10}",
        "",
        f"recovery overhead over {overhead['ops']:,} ops:",
        f"  fault-free        {overhead['clean_ops_per_sec']:>12,} ops/s",
        f"  crash-heavy       {overhead['chaos_ops_per_sec']:>12,} ops/s "
        f"({overhead['recoveries']} recoveries, x{overhead['overhead_multiplier']})",
        f"  signature         "
        f"{'identical' if overhead['signature_identical'] else 'DIVERGED'}",
        "",
        f"gate throughput     {gate['ops_per_sec']:>12,} decisions/s "
        f"({gate['dropped']} dropped, {gate['retries']} retries)",
    ]
    return "\n".join(lines)


def _emit_results(output_dir, results: dict) -> None:
    payload = json.dumps(results, indent=2)
    (output_dir / "BENCH_chaos.json").write_text(payload + "\n", encoding="utf-8")
    emit(output_dir, "chaos", _render(results))


def test_chaos(output_dir):
    results = run_chaos_bench()
    _emit_results(output_dir, results)
    assert results["matrix"]["all_invariants_hold"]
    assert results["matrix"]["all_recoverable_signatures_identical"]
    assert results["recovery_overhead"]["signature_identical"]
    assert results["recovery_overhead"]["recoveries"] > 0


if __name__ == "__main__":
    OUTPUT_DIR.mkdir(exist_ok=True)
    chaos_results = run_chaos_bench()
    _emit_results(OUTPUT_DIR, chaos_results)
