"""N1 — the §5.2 negligence findings over study 1."""

from conftest import emit

from repro.analysis import analyze_negligence


def test_negligence_study1(benchmark, study1, study2, scale, output_dir):
    report = benchmark(lambda: analyze_negligence(study1.database))

    frac = report.fraction
    lines = [
        f"mismatches analysed: {report.total_mismatches:,} "
        f"(paper: 11,764 at full scale)",
        "",
        f"{'finding':<34} {'measured':>12} {'paper':>12}",
        f"{'1024-bit substitute keys':<34} "
        f"{report.downgraded_1024:>7,} ({100 * frac(report.downgraded_1024):4.1f}%)"
        f" {'5,951 (50.6%)':>12}",
        f"{'512-bit substitute keys':<34} {report.downgraded_512:>12,} {'21':>12}",
        f"{'MD5-signed substitutes':<34} {report.md5_signed:>12,} {'23':>12}",
        f"{'MD5 and 512-bit':<34} {report.md5_and_512:>12,} {'21':>12}",
        f"{'2432-bit (stronger) keys':<34} {report.upgraded:>12,} {'7':>12}",
        f"{'SHA-256 signed':<34} {report.sha256_signed:>12,} {'5':>12}",
        f"{'falsified CA claims':<34} {report.false_ca_claims:>12,} {'49':>12}",
        f"{'subject mismatches':<34} {report.subject_mismatches:>12,} {'51+':>12}",
        "",
        f"key-size histogram: {report.key_size_histogram}",
        f"false CA organizations: {dict(report.false_ca_organizations)}",
        f"wrong-domain subjects: {dict(report.wrong_domain_subjects)}",
        "shared-key groups:",
    ]
    for group in report.shared_key_groups:
        lines.append(
            f"  {group.issuer}: one {group.key_bits}-bit key, "
            f"{group.connections} connections, {group.distinct_ips} IPs, "
            f"{group.distinct_countries} countries"
        )
    lines.append(
        "(paper: IopFailZeroAccessCreate — the same 512-bit key in every "
        "certificate, 14 countries)"
    )
    emit(output_dir, "negligence_study1", "\n".join(lines))

    # Shape assertions (scaled counts are noisy; ratios are stable).
    assert 0.40 < frac(report.downgraded_1024) < 0.60  # paper: 50.59%
    assert report.md5_signed >= report.md5_and_512
    if 49 * scale >= 4:  # expected DigiCert masquerades above noise
        assert report.false_ca_claims > 0
    if scale >= 0.2:
        # IopFail's shared 512-bit key becomes detectable with volume;
        # check over both studies (21 + 18 connections at full scale).
        from repro.measure.database import ReportDatabase

        merged = ReportDatabase()
        merged.merge(study1.database)
        merged.merge(study2.database)
        combined = analyze_negligence(merged, shared_key_min_connections=3)
        assert any(g.key_bits == 512 for g in combined.shared_key_groups)
