"""Table 2 — second-study AdWords campaign statistics."""

import random

from conftest import emit

from repro.adwords import run_study2_campaigns
from repro.data.countries import STUDY2_CAMPAIGNS


def test_table2_campaign_stats(benchmark, output_dir):
    outcomes = benchmark(lambda: run_study2_campaigns(random.Random(42)))

    by_name = {o.name: o for o in outcomes}
    lines = [
        f"{'Campaign':<10} {'Impressions':>12} {'Clicks':>8} {'Cost':>11}"
        f"   |   {'paper impr.':>12} {'clicks':>7} {'cost':>10}"
    ]
    total = [0, 0, 0.0]
    paper_total = [0, 0, 0.0]
    for calibration in STUDY2_CAMPAIGNS:
        outcome = by_name[calibration.name]
        lines.append(
            f"{outcome.name:<10} {outcome.impressions:>12,} {outcome.clicks:>8,}"
            f" ${outcome.cost_usd:>9,.2f}   |   {calibration.impressions:>12,}"
            f" {calibration.clicks:>7,} ${calibration.cost_usd:>9,.2f}"
        )
        total[0] += outcome.impressions
        total[1] += outcome.clicks
        total[2] += outcome.cost_usd
        paper_total[0] += calibration.impressions
        paper_total[1] += calibration.clicks
        paper_total[2] += calibration.cost_usd
    lines.append(
        f"{'Total':<10} {total[0]:>12,} {total[1]:>8,} ${total[2]:>9,.2f}"
        f"   |   {paper_total[0]:>12,} {paper_total[1]:>7,} ${paper_total[2]:>9,.2f}"
    )
    emit(output_dir, "table2_campaign_stats", "\n".join(lines))

    # Shape: totals within 15% of the paper's.
    assert abs(total[0] - paper_total[0]) / paper_total[0] < 0.15
    assert abs(total[2] - paper_total[2]) / paper_total[2] < 0.15
