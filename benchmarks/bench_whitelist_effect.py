"""A2 — the §6.3 whitelist hypothesis: this paper vs Huang et al.

The paper measures 0.41 % on low-profile sites; Huang et al. measured
0.20 % on Facebook.  If the big consumer AV products whitelist
Facebook-class sites, both numbers are simultaneously right.  This
bench probes one whitelisted and one ordinary site with the same
population and checks that the two published rates emerge.
"""

from conftest import emit

from repro.study.whitelist import run_whitelist_experiment


def test_whitelist_effect(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: run_whitelist_experiment(seed=42, sessions=300_000),
        rounds=1,
        iterations=1,
    )

    lines = [
        f"sessions: {result.sessions:,}; whitelisting products: "
        f"{', '.join(result.whitelisting_products)}",
        "",
        f"{'site':<24} {'proxied':>8} {'total':>9} {'rate':>8}   paper",
        f"{'low-profile (ours)':<24} {result.low_profile_proxied:>8,} "
        f"{result.low_profile_total:>9,} {100 * result.low_profile_rate:>7.2f}%"
        "   0.41% (this paper)",
        f"{'facebook-class':<24} {result.high_profile_proxied:>8,} "
        f"{result.high_profile_total:>9,} {100 * result.high_profile_rate:>7.2f}%"
        "   0.20% (Huang et al.)",
        "",
        f"rate ratio low/high: {result.rate_ratio:.2f} (papers: 0.41/0.20 = 2.05)",
        "",
        "Both published prevalences emerge from one client population the",
        "moment the major consumer AV products whitelist facebook-class",
        "sites — the paper's §6.3 explanation for the Huang discrepancy.",
    ]
    emit(output_dir, "whitelist_effect", "\n".join(lines))

    assert 0.0030 < result.low_profile_rate < 0.0052  # ≈ 0.41%
    assert 0.0012 < result.high_profile_rate < 0.0030  # ≈ 0.20%
    assert 1.5 < result.rate_ratio < 2.8  # ≈ 2.05
