#!/usr/bin/env python3
"""Reproduce the first measurement study (§5) at reduced scale.

Runs the AdWords-deployed measurement campaign against the authors'
site, then prints the paper's study-1 artifacts: overall prevalence,
proxied connections by country (Table 3), the Issuer Organization
ranking (Table 4) and the issuer classification (Table 5).

Run:  python examples/adwords_campaign_study.py [scale]
      scale defaults to 0.05 (≈143k of the paper's 2.86M measurements)
"""

import sys

from repro.analysis import (
    classification_table,
    country_breakdown,
    issuer_organization_table,
)
from repro.reporting import (
    render_classification_table,
    render_country_table,
    render_issuer_table,
)
from repro.study import StudyConfig, StudyRunner


def main(scale: float) -> None:
    config = StudyConfig(study=1, seed=42, scale=scale, mode="fast")
    print(f"running study 1 (fast mode) at scale {scale} ...")
    result = StudyRunner(config).run()
    db = result.database

    campaign = result.campaigns[0]
    print(f"\nad campaign: {campaign.impressions:,} impressions, "
          f"{campaign.clicks:,} clicks, ${campaign.cost_usd:,.2f} "
          f"(paper: 4,634,386 / 3,897 / $4,911.97)")
    print(f"measurements: {db.total_measurements:,} "
          f"(paper at this scale: {int(2861180 * scale):,})")
    print(f"proxied: {db.mismatch_count:,} -> rate "
          f"{db.proxied_rate * 100:.2f}%  (paper: 0.41%, 1 in 250)")
    print(f"distinct proxied IPs: {db.distinct_proxied_ips():,}")

    print("\n== Table 3: proxied connections by country ==")
    print(render_country_table(country_breakdown(db, top_n=20)))

    print("\n== Table 4: Issuer Organization values ==")
    rows, other = issuer_organization_table(db, top_n=20)
    print(render_issuer_table(rows, other))

    print("\n== Table 5: classification of claimed issuer ==")
    print(render_classification_table(classification_table(db)))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
