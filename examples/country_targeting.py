#!/usr/bin/env python3
"""Reproduce the second study's country findings (§6) at reduced scale.

Runs the six-campaign study (global + China/Ukraine/Russia/Egypt/
Pakistan), then shows the paper's geographic results: the Table 7
volume ranking, the strikingly low Chinese proxy rate versus western
countries, the host-type indifference of Table 8, and the Figure 7
heat map.

Run:  python examples/country_targeting.py [scale]
"""

import sys

from repro.analysis import country_breakdown, heatmap_series, host_type_table
from repro.reporting import (
    render_country_table,
    render_heatmap,
    render_host_type_table,
)
from repro.study import StudyConfig, StudyRunner


def main(scale: float) -> None:
    config = StudyConfig(study=2, seed=42, scale=scale, mode="fast")
    print(f"running study 2 (fast mode) at scale {scale} ...")
    result = StudyRunner(config).run()
    db = result.database

    print("\n== Table 2: campaign statistics ==")
    print(f"{'Campaign':<10} {'Impressions':>12} {'Clicks':>8} {'Cost':>11}")
    for campaign in result.campaigns:
        print(
            f"{campaign.name:<10} {campaign.impressions:>12,} "
            f"{campaign.clicks:>8,} {campaign.cost_usd:>10,.2f}"
        )

    print(f"\nmeasurements: {db.total_measurements:,}, proxied "
          f"{db.mismatch_count:,} ({db.proxied_rate * 100:.2f}%; paper: 0.41%)")

    print("\n== Table 7: connections tested by country (by volume) ==")
    print(render_country_table(country_breakdown(db, top_n=20, order_by="total")))

    totals = db.totals_by_country()
    cn = totals.get("CN", (0, 1))
    us = totals.get("US", (0, 1))
    print(f"\nChina rate:  {100 * cn[0] / cn[1]:.3f}%   (paper: 0.02%)")
    print(f"US rate:     {100 * us[0] / us[1]:.3f}%   (paper: 0.86%)")

    print("\n== Table 8: proxied connections by host type ==")
    print(render_host_type_table(host_type_table(db)))
    print("(the near-identical rates are the paper's no-blacklist finding)")

    print("\n== Figure 7: proxy-prevalence heat map ==")
    print(render_heatmap(heatmap_series(db), columns=5))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
