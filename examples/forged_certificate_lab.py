#!/usr/bin/env python3
"""The §5.2 forged-certificate lab, plus the §7 mitigation ablation.

Recreates the authors' lab experiment: put an attacker with an
*untrusted* CA on the path behind each interception product and watch
what the product does.  Bitdefender blocks the connection; Kurupira
masks the forgery with its own trusted certificate, handing the
attacker an invisible MitM.  Then runs the mitigation ablation to show
which §7 defences catch which interception scenarios.

Run:  python examples/forged_certificate_lab.py
"""

from repro.crypto.keystore import KeyStore
from repro.data.sites import ProbeSite
from repro.mitigation import evaluate_mitigations
from repro.netsim import Network
from repro.proxy import (
    ForgedUpstreamPolicy,
    ProxyCategory,
    ProxyProfile,
    SubstituteCertForger,
    TlsProxyEngine,
)
from repro.study.webpki import build_web_pki
from repro.tls.probe import ProbeClient
from repro.tls.server import TlsCertServer
from repro.x509 import Name


def product_under_test(name: str, policy: ForgedUpstreamPolicy) -> ProxyProfile:
    return ProxyProfile(
        key=f"lab-{name}",
        issuer=Name.build(common_name=f"{name} CA", organization=name),
        category=ProxyCategory.BUSINESS_PERSONAL_FIREWALL,
        leaf_key_bits=1024,
        hash_name="sha1",
        forged_upstream=policy,
    )


def run_lab(name: str, policy: ForgedUpstreamPolicy) -> None:
    """Attacker (untrusted CA) behind the product; client probes through."""
    keystore = KeyStore(seed=99)
    forger = SubstituteCertForger(keystore, seed=99)
    site = ProbeSite("bank.example", "Business")
    pki = build_web_pki(keystore, [site], seed=99)

    network = Network()
    origin = network.add_host("bank.example", ip="203.0.113.20")
    origin.listen(443, TlsCertServer(pki.chain_for("bank.example")).factory)

    victim = network.add_host("victim.example")
    relay = network.add_host("relay.example")

    attacker = TlsProxyEngine(
        ProxyProfile(
            key="lab-attacker",
            issuer=Name.build(common_name="Evil CA", organization="Attacker Inc"),
            category=ProxyCategory.UNKNOWN,
            leaf_key_bits=1024,
            hash_name="sha1",
            injects_root=False,  # the attacker's CA is NOT trusted
            forged_upstream=ForgedUpstreamPolicy.MASK,
        ),
        forger,
        upstream_host=relay,
        upstream_trust=pki.root_store(),
    )
    relay.add_interceptor(attacker)

    product = TlsProxyEngine(
        product_under_test(name, policy),
        forger,
        upstream_host=relay,
        upstream_trust=pki.root_store(),
        upstream_via_interceptors=True,  # its upstream leg crosses the attacker
    )
    victim.add_interceptor(product)

    result = ProbeClient(victim).probe("bank.example", 443)
    print(f"\n{name} (forged-upstream policy: {policy.value})")
    if not result.ok:
        print(f"  connection blocked: {result.error}")
        print("  -> the product protected the user from the attacker")
        return
    print(f"  client received certificate issued by: {result.leaf.issuer}")
    print("  -> the product accepted the attacker's forged upstream chain and")
    print("     re-signed it with its own TRUSTED root: the user sees a lock")
    print("     icon while the attacker reads everything (the Kurupira flaw)")


def main() -> None:
    print("== §5.2 lab: attacker with untrusted CA behind the filter ==")
    run_lab("Bitdefender-like", ForgedUpstreamPolicy.BLOCK)
    run_lab("Kurupira-like", ForgedUpstreamPolicy.MASK)

    print("\n== §7 mitigation ablation ==")
    evaluation = evaluate_mitigations(seed=7)
    header = (
        f"{'scenario':<18} {'intercepted':<11} {'pinning':<20} "
        f"{'pinning-strict':<14} {'notary':<15} {'dvcert':<14} disclosure"
    )
    print(header)
    print("-" * len(header))
    for outcome in evaluation.outcomes:
        print(
            f"{outcome.scenario:<18} {str(outcome.intercepted):<11} "
            f"{outcome.pinning:<20} {outcome.pinning_strict:<14} "
            f"{outcome.notary:<15} {outcome.dvcert:<14} {outcome.disclosure}"
        )
    print(
        "\nreading: Chrome-style pinning (trusting local roots) is bypassed by\n"
        "every root-injecting proxy; notaries and DVCert detect all MitM\n"
        "variants; only a cooperating proxy ever disclosed itself."
    )


if __name__ == "__main__":
    main()
