#!/usr/bin/env python3
"""Quickstart: detect a TLS proxy with a certificate probe.

Builds the smallest possible world — one origin site, one client with
an antivirus TLS proxy installed, one clean client — and shows how the
paper's measurement works: probe both paths, compare the certificates
the clients actually received against the authoritative one.

Run:  python examples/quickstart.py
"""

from repro.crypto.keystore import KeyStore
from repro.data.sites import ProbeSite
from repro.netsim import Network
from repro.proxy import ProxyCategory, ProxyProfile, SubstituteCertForger, TlsProxyEngine
from repro.study.webpki import build_web_pki
from repro.tls.probe import ProbeClient
from repro.tls.server import TlsCertServer
from repro.x509 import Name


def main() -> None:
    # --- the legitimate web: a site with a real certificate chain -----
    keystore = KeyStore(seed=2014)
    site = ProbeSite("shop.example", "Business")
    pki = build_web_pki(keystore, [site], seed=2014)
    network = Network()
    origin = network.add_host("shop.example", ip="203.0.113.10")
    origin.listen(443, TlsCertServer(pki.chain_for("shop.example")).factory)
    genuine = pki.leaf_for("shop.example")
    print("authoritative certificate")
    print(f"  subject : {genuine.subject}")
    print(f"  issuer  : {genuine.issuer}")
    print(f"  key     : {genuine.public_key_bits} bits, {genuine.signature_algorithm}")
    print(f"  sha256  : {genuine.fingerprint()[:32]}...")

    # --- a clean client sees exactly that certificate ------------------
    clean_client = network.add_host("clean-client.example")
    observed = ProbeClient(clean_client).probe("shop.example", 443)
    assert observed.ok
    match = observed.leaf.fingerprint() == genuine.fingerprint()
    print(f"\nclean client: certificate matches authoritative? {match}")

    # --- a client running an interception product ----------------------
    victim = network.add_host("av-client.example")
    profile = ProxyProfile(
        key="demo-av",
        issuer=Name.build(common_name="DemoAV Web Shield CA", organization="DemoAV"),
        category=ProxyCategory.BUSINESS_PERSONAL_FIREWALL,
        leaf_key_bits=1024,  # the §5.2 key-size downgrade
        hash_name="sha1",
    )
    forger = SubstituteCertForger(keystore, seed=2014)
    engine = TlsProxyEngine(
        profile, forger, upstream_host=victim, upstream_trust=pki.root_store()
    )
    victim.add_interceptor(engine)

    observed = ProbeClient(victim).probe("shop.example", 443)
    assert observed.ok
    substitute = observed.leaf
    mismatch = substitute.fingerprint() != genuine.fingerprint()
    print(f"\nproxied client: certificate mismatch detected? {mismatch}")
    print("substitute certificate the proxy forged")
    print(f"  subject : {substitute.subject}")
    print(f"  issuer  : {substitute.issuer}   <-- the proxy names itself")
    print(
        f"  key     : {substitute.public_key_bits} bits "
        f"(downgraded from {genuine.public_key_bits})"
    )
    print(f"  sha256  : {substitute.fingerprint()[:32]}...")
    print(f"\nproxy engine stats: intercepted={engine.intercepted}")


if __name__ == "__main__":
    main()
