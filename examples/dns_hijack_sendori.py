#!/usr/bin/env python3
"""The Sendori attack chain (§5.1): DNS hijack masked by a TLS proxy.

Sendori "produce[s] software that compromises the DNS lookup of
infected machines, allowing them to redirect users to improper hosts.
A TLS proxy component is used to bypass host authenticity warnings in
the browser."  This example stages the full chain:

1. the victim's DNS for ``bank.example`` is poisoned toward a host the
   malware operator controls;
2. on its own, that redirect would trip certificate validation (the
   attacker's server cannot present a valid ``bank.example`` chain);
3. Sendori's TLS proxy component — signing with the root it injected
   at install time — papers over the mismatch, so the browser shows a
   lock icon on the attacker's server.

Run:  python examples/dns_hijack_sendori.py
"""

from repro.crypto.keystore import KeyStore
from repro.data.sites import ProbeSite
from repro.netsim import Network
from repro.proxy import ForgedUpstreamPolicy, ProxyCategory, ProxyProfile
from repro.proxy.forger import SubstituteCertForger
from repro.proxy.engine import TlsProxyEngine
from repro.study.webpki import build_web_pki
from repro.tls.probe import ProbeClient
from repro.tls.server import TlsCertServer
from repro.x509 import Name, RootStore, validate_chain


def main() -> None:
    keystore = KeyStore(seed=5151)
    forger = SubstituteCertForger(keystore, seed=5151)
    bank = ProbeSite("bank.example", "Business")
    pki = build_web_pki(keystore, [bank], seed=5151)

    network = Network()
    origin = network.add_host("bank.example", ip="203.0.113.60")
    origin.listen(443, TlsCertServer(pki.chain_for("bank.example")).factory)

    # The attacker's server holds a self-signed certificate for the
    # bank's name — worthless against an intact root store.
    attacker_host = network.add_host("attacker.example", ip="203.0.113.66")
    attacker_profile = ProxyProfile(
        key="attacker-server",
        issuer=Name.build(common_name="Totally Real Bank CA", organization="Attacker"),
        category=ProxyCategory.UNKNOWN,
        leaf_key_bits=1024,
        hash_name="sha1",
        injects_root=False,
    )
    fake_bank_cert = forger.forge(
        attacker_profile, pki.leaf_for("bank.example"), "bank.example"
    )
    attacker_host.listen(443, TlsCertServer(list(fake_bank_cert.chain)).factory)

    victim = network.add_host("victim.example")
    victim_store = pki.root_store()

    print("step 0: clean lookup — the victim reaches the real bank")
    result = ProbeClient(victim).probe("bank.example", 443)
    verdict = validate_chain(list(result.chain), victim_store, hostname="bank.example")
    print(f"  issuer: {result.leaf.issuer.organization}, valid: {verdict.valid}")

    print("\nstep 1: Sendori poisons DNS for bank.example")
    victim.dns_overrides["bank.example"] = "attacker.example"
    result = ProbeClient(victim).probe("bank.example", 443)
    verdict = validate_chain(list(result.chain), victim_store, hostname="bank.example")
    print(f"  issuer: {result.leaf.issuer.organization}, valid: {verdict.valid}")
    print("  -> redirect works, but the browser would warn loudly")

    print("\nstep 2: Sendori's TLS proxy masks the forged certificate")
    sendori_profile = ProxyProfile(
        key="sendori",
        issuer=Name.build(common_name="Sendori CA", organization="Sendori Inc"),
        category=ProxyCategory.MALWARE,
        leaf_key_bits=2048,
        hash_name="sha1",
        forged_upstream=ForgedUpstreamPolicy.MASK,  # accept anything upstream
    )
    engine = TlsProxyEngine(
        sendori_profile,
        forger,
        upstream_host=victim,
        upstream_trust=RootStore(),  # the malware validates nothing
    )
    victim.add_interceptor(engine)
    sendori_root = forger.authority_for(sendori_profile).certificate
    victim_store.inject(sendori_root)  # installed with the malware

    result = ProbeClient(victim).probe("bank.example", 443)
    verdict = validate_chain(list(result.chain), victim_store, hostname="bank.example")
    print(f"  issuer: {result.leaf.issuer.organization}, valid: {verdict.valid}")
    print(
        f"  trusted via injected root: {verdict.trusted_via_injected_root}"
    )
    print(
        "  -> the victim sees a lock icon for bank.example while talking to"
        "\n     the attacker's server; only the injected root gives it away."
    )


if __name__ == "__main__":
    main()
