#!/usr/bin/env python3
"""Certificate Transparency in the proxy ecosystem (§7 extension).

Shows what an RFC 6962-style audit log can and cannot do about TLS
proxies: a rogue *public* CA mis-issuing for your domain is caught by
your monitor, while an AV product or malware signing with a locally
injected root never touches any log — exactly the asymmetry the
paper's §7 survey implies.

Run:  python examples/transparency_audit.py
"""

from repro.crypto.keystore import KeyStore
from repro.data.sites import ProbeSite
from repro.mitigation.ctlog import CtLog, CtMonitor, verify_inclusion
from repro.proxy import ProxyCategory, ProxyProfile, SubstituteCertForger
from repro.study.webpki import build_web_pki
from repro.x509 import Name


def main() -> None:
    keystore = KeyStore(seed=6962)
    site = ProbeSite("bank.example", "Business")
    pki = build_web_pki(keystore, [site], seed=6962)
    genuine = pki.leaf_for("bank.example")
    legitimate_issuer = genuine.issuer.organization

    log = CtLog(log_id="repro-log-1", key=keystore.key("ct-log", 1024))
    monitor = CtMonitor("bank.example", frozenset({legitimate_issuer}))

    # --- normal operation: the real CA logs the real certificate -------
    sct = log.submit(genuine)
    proof, root, size = log.prove_inclusion(sct.leaf_index)
    included = verify_inclusion(genuine.encode(), sct.leaf_index, size, proof, root)
    print(f"genuine certificate logged; SCT verifies: "
          f"{log.verify_sct(sct, log.key.public)}, inclusion proof: {included}")
    print(f"monitor audit: {len(monitor.audit(log))} flagged (expected 0)")

    # --- a rogue public CA mis-issues for the domain --------------------
    forger = SubstituteCertForger(keystore, seed=6962)
    rogue_root = next(
        ca for ca in pki.roots.values()
        if ca.certificate.subject.organization != legitimate_issuer
    )
    rogue_profile = ProxyProfile(
        key="rogue-public-ca",
        issuer=rogue_root.certificate.subject,
        category=ProxyCategory.UNKNOWN,
        leaf_key_bits=2048,
        hash_name="sha1",
        injects_root=False,
    )
    mis_issued = forger.forge(rogue_profile, genuine, "bank.example").leaf
    log.submit(mis_issued)  # public CAs must log what they issue
    flagged = monitor.audit(log)
    print(f"\nrogue public CA ({rogue_root.certificate.subject.organization}) "
          f"mis-issues for bank.example")
    print(f"monitor audit: {len(flagged)} flagged — issuer "
          f"{flagged[0].issuer.organization!r} is not authorised for this domain")

    # --- an AV proxy forges with a locally injected root ------------------
    av_profile = ProxyProfile(
        key="local-av",
        issuer=Name.build(common_name="AV Web Shield", organization="LocalAV"),
        category=ProxyCategory.BUSINESS_PERSONAL_FIREWALL,
        leaf_key_bits=1024,
        hash_name="sha1",
    )
    forger.forge(av_profile, genuine, "bank.example")  # victim sees this cert
    before = len(monitor.audit(log))
    print("\nAV proxy forges bank.example with its locally injected root")
    print(f"monitor audit: still {before} flagged — the substitute never "
          "reached any log")
    print("\nconclusion: CT constrains the public CA ecosystem, but local-root")
    print("interception (the 0.41% the paper measured) is invisible to it.")


if __name__ == "__main__":
    main()
